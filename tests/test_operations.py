"""Tests for graph operations (subgraph extraction, extension, statistics)."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graph import Graph, molecule_graph, path_graph
from repro.graph.operations import (
    average_degree,
    dataset_statistics,
    disjoint_union,
    edge_induced_subgraph,
    extend_graph,
    graph_density,
    random_connected_subgraph,
    shrink_graph,
)
from repro.isomorphism import VF2Matcher


class TestRandomConnectedSubgraph:
    def test_requested_size(self):
        source = molecule_graph(20, rng=1)
        sub = random_connected_subgraph(source, 7, rng=2)
        assert sub.num_vertices == 7

    def test_result_is_connected_when_source_connected(self):
        source = molecule_graph(25, rng=3)
        sub = random_connected_subgraph(source, 10, rng=4)
        assert sub.is_connected()

    def test_result_is_subgraph_of_source(self):
        source = molecule_graph(18, rng=5)
        sub = random_connected_subgraph(source, 6, rng=6)
        assert VF2Matcher().is_subgraph(sub, source)

    def test_relabelled_to_dense_ids(self):
        source = molecule_graph(15, rng=7)
        sub = random_connected_subgraph(source, 5, rng=8)
        assert set(sub.vertices()) == set(range(5))

    def test_without_relabel_keeps_source_ids(self):
        source = molecule_graph(15, rng=9)
        sub = random_connected_subgraph(source, 5, rng=10, relabel=False)
        assert set(sub.vertices()) <= set(source.vertices())

    def test_too_large_request_rejected(self):
        source = molecule_graph(5, rng=11)
        with pytest.raises(GraphError):
            random_connected_subgraph(source, 6)

    def test_zero_request_rejected(self):
        source = molecule_graph(5, rng=12)
        with pytest.raises(GraphError):
            random_connected_subgraph(source, 0)

    def test_full_size_extraction(self):
        source = molecule_graph(8, rng=13)
        sub = random_connected_subgraph(source, 8, rng=14)
        assert sub.num_vertices == 8
        assert sub.num_edges == source.num_edges

    def test_handles_disconnected_source(self):
        graph = Graph()
        for vertex, label in enumerate(["C", "C", "O", "O"]):
            graph.add_vertex(vertex, label)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        sub = random_connected_subgraph(graph, 4, rng=15)
        assert sub.num_vertices == 4


class TestShrinkAndExtend:
    def test_shrink_produces_subgraph(self):
        source = molecule_graph(16, rng=20)
        smaller = shrink_graph(source, 9, rng=21)
        assert smaller.num_vertices == 9
        assert VF2Matcher().is_subgraph(smaller, source)

    def test_extend_produces_supergraph(self):
        base = molecule_graph(10, rng=22)
        bigger = extend_graph(base, 4, labels=["C", "N"], rng=23)
        assert bigger.num_vertices == 14
        assert VF2Matcher().is_subgraph(base, bigger)

    def test_extend_zero_vertices_is_copy(self):
        base = molecule_graph(10, rng=24)
        same = extend_graph(base, 0, labels=["C"], rng=25)
        assert same.num_vertices == base.num_vertices
        assert same.num_edges == base.num_edges

    def test_extend_requires_labels(self):
        base = molecule_graph(5, rng=26)
        with pytest.raises(GraphError):
            extend_graph(base, 2, labels=[], rng=27)

    def test_extend_negative_rejected(self):
        base = molecule_graph(5, rng=28)
        with pytest.raises(GraphError):
            extend_graph(base, -1, labels=["C"])

    def test_extend_stays_connected(self):
        base = molecule_graph(12, rng=29)
        bigger = extend_graph(base, 5, labels=["C", "O"], rng=30)
        assert bigger.is_connected()


class TestSetLikeOperations:
    def test_disjoint_union_sizes(self):
        first = path_graph(["C", "O"])
        second = path_graph(["N", "N", "S"])
        union = disjoint_union(first, second)
        assert union.num_vertices == 5
        assert union.num_edges == 3
        assert len(union.connected_components()) == 2

    def test_edge_induced_subgraph(self, square_with_tail):
        sub = edge_induced_subgraph(square_with_tail, [(0, 1), (1, 2)])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2

    def test_edge_induced_missing_edge_raises(self, square_with_tail):
        with pytest.raises(GraphError):
            edge_induced_subgraph(square_with_tail, [(0, 2)])


class TestStatistics:
    def test_density_bounds(self):
        graph = path_graph(["C", "C", "C"])
        assert 0.0 < graph_density(graph) < 1.0

    def test_density_trivial_graphs(self):
        assert graph_density(Graph()) == 0.0
        single = Graph()
        single.add_vertex(0, "C")
        assert graph_density(single) == 0.0

    def test_average_degree(self):
        graph = path_graph(["C", "C", "C"])
        assert average_degree(graph) == pytest.approx(4 / 3)
        assert average_degree(Graph()) == 0.0

    def test_dataset_statistics(self):
        rng = random.Random(0)
        dataset = [molecule_graph(10, rng=rng) for _ in range(4)]
        stats = dataset_statistics(dataset)
        assert stats["num_graphs"] == 4
        assert stats["avg_vertices"] == 10
        assert stats["num_labels"] >= 1

    def test_dataset_statistics_empty(self):
        stats = dataset_statistics([])
        assert stats["num_graphs"] == 0
        assert stats["avg_vertices"] == 0.0
