"""Tests for the GraphCache kernel (lookup, credit, offer, replacement)."""

from __future__ import annotations

import random

import pytest

from repro.cache import CacheEntry, GraphCache
from repro.errors import CacheCapacityError
from repro.graph import molecule_graph
from repro.graph.operations import extend_graph, random_connected_subgraph
from repro.query_model import Query, QueryType


def subgraph_query(graph) -> Query:
    return Query(graph=graph, query_type=QueryType.SUBGRAPH)


def cached_entry(graph, answer, clock=0) -> CacheEntry:
    return CacheEntry(
        graph=graph,
        query_type=QueryType.SUBGRAPH,
        answer=frozenset(answer),
        admitted_clock=clock,
    )


@pytest.fixture()
def warm_cache():
    """A cache warmed with one big and one small cached query."""
    rng = random.Random(7)
    big = molecule_graph(16, rng=rng)
    small = random_connected_subgraph(big, 5, rng=rng)
    cache = GraphCache(capacity=10, policy="LRU", window_size=2)
    big_entry = cached_entry(big, {1, 2, 3})
    small_entry = cached_entry(small, {1, 2, 3, 4, 5})
    cache.warm([big_entry, small_entry])
    return cache, big, small, big_entry, small_entry


class TestConstruction:
    def test_invalid_capacity(self):
        with pytest.raises(CacheCapacityError):
            GraphCache(capacity=0)

    def test_policy_by_name_or_instance(self):
        from repro.cache import HDPolicy

        assert GraphCache(policy="PIN").policy.name == "PIN"
        assert GraphCache(policy=HDPolicy()).policy.name == "HD"

    def test_describe(self):
        cache = GraphCache(capacity=5, policy="POP", window_size=2)
        description = cache.describe()
        assert description["capacity"] == 5
        assert description["policy"] == "POP"
        assert description["population"] == 0


class TestLookup:
    def test_empty_cache_no_hits(self):
        cache = GraphCache(capacity=5)
        lookup = cache.lookup(subgraph_query(molecule_graph(6, rng=1)))
        assert not lookup.any_hit

    def test_sub_case_hit_detected(self, warm_cache):
        cache, big, _small, big_entry, _ = warm_cache
        query = subgraph_query(random_connected_subgraph(big, 6, rng=3))
        lookup = cache.lookup(query)
        assert big_entry in lookup.sub_hits

    def test_super_case_hit_detected(self, warm_cache):
        cache, _big, small, _, small_entry = warm_cache
        bigger = extend_graph(small, 4, labels=["C", "N", "O"], rng=5)
        lookup = cache.lookup(subgraph_query(bigger))
        assert small_entry in lookup.super_hits

    def test_exact_hit_detected(self, warm_cache):
        cache, big, _small, big_entry, _ = warm_cache
        permuted = big.relabel_vertices(
            {vertex: f"v{i}" for i, vertex in enumerate(reversed(big.vertices()))}
        )
        lookup = cache.lookup(subgraph_query(permuted))
        assert lookup.exact_entry is big_entry

    def test_probe_costs_accounted(self, warm_cache):
        cache, big, _small, _, _ = warm_cache
        query = subgraph_query(random_connected_subgraph(big, 6, rng=6))
        lookup = cache.lookup(query)
        assert lookup.probe_tests >= len(lookup.sub_hits) + len(lookup.super_hits)
        assert lookup.probe_seconds >= 0.0

    def test_different_query_type_not_matched(self, warm_cache):
        cache, big, _small, _, _ = warm_cache
        query = Query(
            graph=random_connected_subgraph(big, 6, rng=7), query_type=QueryType.SUPERGRAPH
        )
        lookup = cache.lookup(query)
        assert not lookup.any_hit

    def test_clock_ticks(self):
        cache = GraphCache(capacity=3)
        assert cache.clock == 0
        cache.tick()
        cache.tick()
        assert cache.clock == 2


class TestCredit:
    def test_credit_updates_entry_statistics(self, warm_cache):
        cache, big, _small, big_entry, _ = warm_cache
        query = subgraph_query(random_connected_subgraph(big, 6, rng=8))
        cache.tick()
        lookup = cache.lookup(query)
        assert big_entry in lookup.sub_hits
        cache.credit(lookup, {big_entry.entry_id: 7}, average_test_seconds=0.01)
        assert big_entry.stats.tests_saved == 7
        assert big_entry.stats.seconds_saved == pytest.approx(0.07)
        assert big_entry.stats.sub_hits == 1

    def test_credit_exact_hit(self, warm_cache):
        cache, big, _small, big_entry, _ = warm_cache
        lookup = cache.lookup(subgraph_query(big.copy()))
        assert lookup.exact_entry is big_entry
        cache.credit(lookup, {big_entry.entry_id: 20}, average_test_seconds=0.0)
        assert big_entry.stats.exact_hits == 1
        assert big_entry.stats.tests_saved == 20


class TestOfferAndReplacement:
    def test_window_batches_admissions(self):
        cache = GraphCache(capacity=10, window_size=3)
        for seed in range(2):
            report = cache.offer(
                subgraph_query(molecule_graph(6, rng=seed)),
                answer={seed},
                tests_performed=5,
                observed_test_cost=0.001,
            )
            assert report is None
        report = cache.offer(
            subgraph_query(molecule_graph(6, rng=99)),
            answer={99},
            tests_performed=5,
            observed_test_cost=0.001,
        )
        assert report is not None
        assert len(cache) == 3

    def test_capacity_never_exceeded(self):
        cache = GraphCache(capacity=4, window_size=2, policy="LRU")
        for seed in range(12):
            cache.tick()
            cache.offer(
                subgraph_query(molecule_graph(6, rng=seed)),
                answer={seed},
                tests_performed=3,
                observed_test_cost=0.001,
            )
        assert len(cache) <= 4

    def test_flush_window_forces_admission(self):
        cache = GraphCache(capacity=10, window_size=5)
        cache.offer(
            subgraph_query(molecule_graph(6, rng=1)),
            answer=set(),
            tests_performed=1,
            observed_test_cost=0.0,
        )
        assert len(cache) == 0
        report = cache.flush_window()
        assert report is not None
        assert len(cache) == 1
        assert cache.flush_window() is None

    def test_evicted_entries_leave_query_index(self):
        cache = GraphCache(capacity=2, window_size=1, policy="LRU")
        for seed in range(5):
            cache.tick()
            cache.offer(
                subgraph_query(molecule_graph(6, rng=seed)),
                answer=set(),
                tests_performed=1,
                observed_test_cost=0.0,
            )
        assert len(cache) <= 2
        assert len(cache.query_index) == len(cache)
        reports = cache.eviction_reports()
        assert any(report.evicted for report in reports)

    def test_warm_respects_capacity(self):
        cache = GraphCache(capacity=2)
        entries = [cached_entry(molecule_graph(5, rng=seed), set()) for seed in range(5)]
        cache.warm(entries)
        assert len(cache) == 2

    def test_memory_accounting(self, warm_cache):
        cache, *_ = warm_cache
        assert cache.memory_bytes() > 0
