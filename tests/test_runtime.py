"""Tests for the runtime: configuration, executor, reports and the facade."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.graph import molecule_dataset
from repro.graph.operations import random_connected_subgraph
from repro.methods import DirectSIMethod
from repro.query_model import Query, QueryType
from repro.runtime import GCConfig, GraphCacheSystem, QueryReport
from tests.conftest import make_subgraph_queries


class TestGCConfig:
    def test_defaults_valid(self):
        GCConfig().validate()

    def test_round_trip(self):
        config = GCConfig(cache_capacity=20, replacement_policy="PIN", window_size=4)
        restored = GCConfig.from_dict(config.to_dict())
        assert restored == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cache_capacity": 0},
            {"window_size": 0},
            {"cache_capacity": 5, "window_size": 10},
            {"min_tests_to_admit": -1},
            {"cache_feature_length": 0},
            {"max_sub_hits": 0},
            {"shard_backend": "fork"},
            {"shard_backend": "threads"},
            {"shard_respawn_limit": -1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GCConfig(**kwargs).validate()

    def test_unknown_shard_backend_names_choices(self):
        with pytest.raises(ConfigurationError) as excinfo:
            GCConfig(shard_backend="gevent").validate()
        message = str(excinfo.value)
        assert "gevent" in message
        assert "thread" in message and "process" in message

    def test_shard_backend_round_trips(self):
        config = GCConfig(num_shards=2, shard_backend="process", shard_respawn_limit=3)
        restored = GCConfig.from_dict(config.to_dict())
        assert restored.shard_backend == "process"
        assert restored.shard_respawn_limit == 3
        restored.validate()


class TestQueryReport:
    def test_speedup_properties(self):
        query = Query(graph=molecule_dataset(1, rng=1)[0], query_type=QueryType.SUBGRAPH)
        report = QueryReport(query=query, baseline_tests=20, dataset_tests=10)
        assert report.tests_saved == 10
        assert report.test_speedup == 2.0

    def test_infinite_speedup(self):
        query = Query(graph=molecule_dataset(1, rng=2)[0], query_type=QueryType.SUBGRAPH)
        report = QueryReport(query=query, baseline_tests=5, dataset_tests=0)
        assert report.test_speedup == float("inf")

    def test_journey_keys(self):
        query = Query(graph=molecule_dataset(1, rng=3)[0], query_type=QueryType.SUBGRAPH)
        report = QueryReport(query=query)
        journey = report.journey()
        assert {"H", "H_prime", "C_M", "S", "S_prime", "C", "R", "A"} <= set(journey)


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(20, min_vertices=8, max_vertices=16, rng=51)


class TestGraphCacheSystem:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            GraphCacheSystem([], GCConfig())

    def test_answers_match_baseline_method(self, dataset):
        config = GCConfig(cache_capacity=10, window_size=2, method="graphgrep-sx",
                          method_options={"feature_size": 2})
        system = GraphCacheSystem(dataset, config)
        baseline = DirectSIMethod()
        baseline.build(dataset)
        for query in make_subgraph_queries(dataset, 10, 6, seed=3):
            report = system.run_query(query)
            expected = baseline.execute(query.graph, query.query_type).answer
            assert report.answer == expected

    def test_repeated_query_becomes_exact_hit(self, dataset):
        config = GCConfig(cache_capacity=10, window_size=1)
        system = GraphCacheSystem(dataset, config)
        query_graph = random_connected_subgraph(dataset[0], 6, rng=5)
        first = system.run_query(query_graph.copy(), "subgraph")
        second = system.run_query(query_graph.copy(), "subgraph")
        assert first.exact_hit_entry is None
        assert second.exact_hit_entry is not None
        assert second.dataset_tests == 0
        assert second.answer == first.answer

    def test_cache_disabled_is_pure_method(self, dataset):
        config = GCConfig(cache_enabled=False)
        system = GraphCacheSystem(dataset, config)
        query = random_connected_subgraph(dataset[1], 6, rng=6)
        report = system.run_query(query, "subgraph")
        assert report.probe_tests == 0
        assert report.dataset_tests == len(report.method_candidates)
        assert system.cache is None
        assert system.cache_memory_bytes() == 0

    def test_statistics_recorded(self, dataset):
        system = GraphCacheSystem(dataset, GCConfig(window_size=2, cache_capacity=8))
        queries = make_subgraph_queries(dataset, 6, 5, seed=7)
        system.run_queries(queries)
        aggregate = system.aggregate()
        assert aggregate.num_queries == 6
        assert len(system.records()) == 6
        assert len(system.hit_percentages()) == 6

    def test_warm_cache_resets_statistics(self, dataset):
        system = GraphCacheSystem(dataset, GCConfig(window_size=2, cache_capacity=8))
        system.warm_cache(make_subgraph_queries(dataset, 4, 6, seed=8))
        assert system.aggregate().num_queries == 0
        assert len(system.cache) > 0

    def test_measure_baseline_records_time(self, dataset):
        system = GraphCacheSystem(
            dataset, GCConfig(measure_baseline=True, cache_capacity=8, window_size=2)
        )
        report = system.run_query(random_connected_subgraph(dataset[2], 5, rng=9), "subgraph")
        assert report.baseline_seconds is not None
        assert report.baseline_seconds > 0.0

    def test_memory_overhead_ratio(self, dataset):
        system = GraphCacheSystem(
            dataset,
            GCConfig(method="graphgrep-sx", method_options={"feature_size": 3}, window_size=2),
        )
        system.run_queries(make_subgraph_queries(dataset, 6, 6, seed=10))
        assert system.index_memory_bytes() > 0
        assert 0.0 <= system.memory_overhead_ratio() < 1.0

    def test_describe(self, dataset):
        system = GraphCacheSystem(dataset, GCConfig())
        description = system.describe()
        assert description["dataset_size"] == len(dataset)
        assert "cache" in description
        assert description["method"]["name"] == "graphgrep-sx"

    def test_supergraph_queries_supported(self, dataset):
        from repro.graph.operations import extend_graph

        labels = sorted({label for g in dataset for label in g.label_set()})
        system = GraphCacheSystem(dataset, GCConfig(window_size=2, cache_capacity=8))
        rng = random.Random(11)
        query = extend_graph(dataset[3], 5, labels=labels, rng=rng)
        report = system.run_query(query, "supergraph")
        baseline = DirectSIMethod()
        baseline.build(dataset)
        assert report.answer == baseline.execute(query, "supergraph").answer

    def test_custom_method_instance(self, dataset):
        method = DirectSIMethod()
        system = GraphCacheSystem(dataset, GCConfig(), method=method)
        assert system.method is method
        report = system.run_query(random_connected_subgraph(dataset[0], 5, rng=12), "subgraph")
        assert report.baseline_tests == len(dataset)
