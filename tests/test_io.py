"""Tests for graph dataset I/O (transaction text format and JSON)."""

from __future__ import annotations

import pytest

from repro.errors import GraphFormatError
from repro.graph import molecule_dataset
from repro.graph.io import (
    format_transaction_text,
    iter_transaction_blocks,
    load_dataset,
    load_json_file,
    load_transaction_file,
    parse_transaction_text,
    save_json_file,
    save_transaction_file,
)

SAMPLE = """
t # 0
v 0 C
v 1 O
v 2 N
e 0 1
e 1 2 double
t # 1
v 0 C
v 1 C
e 0 1
"""


class TestParsing:
    def test_parse_two_graphs(self):
        graphs = parse_transaction_text(SAMPLE)
        assert len(graphs) == 2
        assert graphs[0].graph_id == 0
        assert graphs[0].num_vertices == 3
        assert graphs[0].num_edges == 2
        assert graphs[1].num_edges == 1

    def test_edge_label_parsed(self):
        graphs = parse_transaction_text(SAMPLE)
        assert graphs[0].edge_label(1, 2) == "double"

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\nt # 5\nv 0 C\n"
        graphs = parse_transaction_text(text)
        assert len(graphs) == 1
        assert graphs[0].graph_id == 5

    def test_vertex_before_transaction_raises(self):
        with pytest.raises(GraphFormatError):
            parse_transaction_text("v 0 C\n")

    def test_edge_before_transaction_raises(self):
        with pytest.raises(GraphFormatError):
            parse_transaction_text("e 0 1\n")

    def test_malformed_vertex_raises(self):
        with pytest.raises(GraphFormatError):
            parse_transaction_text("t # 0\nv 0\n")

    def test_unknown_record_raises(self):
        with pytest.raises(GraphFormatError):
            parse_transaction_text("t # 0\nx 1 2\n")

    def test_string_graph_ids(self):
        graphs = parse_transaction_text("t # mol-1\nv 0 C\n")
        assert graphs[0].graph_id == "mol-1"


class TestRoundTrips:
    def test_text_round_trip(self):
        dataset = molecule_dataset(5, min_vertices=4, max_vertices=8, rng=3)
        text = format_transaction_text(dataset)
        back = parse_transaction_text(text)
        assert len(back) == len(dataset)
        for original, restored in zip(dataset, back):
            assert restored.num_vertices == original.num_vertices
            assert restored.num_edges == original.num_edges
            assert restored.label_counts() == original.label_counts()

    def test_file_round_trip(self, tmp_path):
        dataset = molecule_dataset(4, min_vertices=4, max_vertices=6, rng=4)
        path = tmp_path / "dataset.txt"
        save_transaction_file(dataset, path)
        back = load_transaction_file(path)
        assert len(back) == 4

    def test_json_round_trip(self, tmp_path):
        dataset = molecule_dataset(4, min_vertices=4, max_vertices=6, rng=5)
        path = tmp_path / "dataset.json"
        save_json_file(dataset, path)
        back = load_json_file(path)
        assert len(back) == 4
        assert back[0].label_counts() == dataset[0].label_counts()

    def test_load_dataset_dispatches_on_extension(self, tmp_path):
        dataset = molecule_dataset(3, min_vertices=4, max_vertices=6, rng=6)
        json_path = tmp_path / "d.json"
        text_path = tmp_path / "d.txt"
        save_json_file(dataset, json_path)
        save_transaction_file(dataset, text_path)
        assert len(load_dataset(json_path)) == 3
        assert len(load_dataset(text_path)) == 3

    def test_json_requires_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(GraphFormatError):
            load_json_file(path)

    def test_empty_dataset_serialises(self):
        assert format_transaction_text([]) == ""
        assert parse_transaction_text("") == []


class TestStreaming:
    def test_iter_transaction_blocks(self):
        blocks = list(iter_transaction_blocks(SAMPLE))
        assert len(blocks) == 2
        assert blocks[0].startswith("t # 0")
        assert "e 0 1" in blocks[1]
