"""Tests for the Window Manager and the Statistics Manager."""

from __future__ import annotations

import pytest

from repro.cache import CacheEntry, QueryRecord, StatisticsManager, WindowManager
from repro.errors import ConfigurationError
from repro.graph import molecule_graph
from repro.query_model import QueryType


def make_entry(seed: int) -> CacheEntry:
    return CacheEntry(
        graph=molecule_graph(5, rng=seed), query_type=QueryType.SUBGRAPH, answer=frozenset()
    )


class TestWindowManager:
    def test_offer_returns_batch_when_full(self):
        window = WindowManager(window_size=3)
        assert window.offer(make_entry(1), tests_performed=5) is None
        assert window.offer(make_entry(2), tests_performed=5) is None
        batch = window.offer(make_entry(3), tests_performed=5)
        assert batch is not None
        assert len(batch) == 3
        assert window.pending_count == 0

    def test_flush_releases_partial_window(self):
        window = WindowManager(window_size=10)
        window.offer(make_entry(4), tests_performed=1)
        window.offer(make_entry(5), tests_performed=1)
        batch = window.flush()
        assert len(batch) == 2
        assert window.flush() == []

    def test_admission_control_rejects_cheap_queries(self):
        window = WindowManager(window_size=2, min_tests_to_admit=10)
        assert window.offer(make_entry(6), tests_performed=3) is None
        assert window.pending_count == 0
        snapshot = window.snapshot()
        assert snapshot.rejected == 1

    def test_snapshot_contents(self):
        window = WindowManager(window_size=5)
        entry = make_entry(7)
        window.offer(entry, tests_performed=1)
        snapshot = window.snapshot()
        assert snapshot.pending == [entry.entry_id]
        assert snapshot.window_size == 5

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            WindowManager(window_size=0)
        with pytest.raises(ConfigurationError):
            WindowManager(window_size=5, min_tests_to_admit=-1)


def record(
    query_id: int,
    baseline_tests: int = 10,
    dataset_tests: int = 5,
    sub_hits: int = 1,
    super_hits: int = 0,
    exact: bool = False,
    total_seconds: float = 0.01,
    baseline_seconds: float | None = 0.02,
    cache_population: int = 0,
) -> QueryRecord:
    return QueryRecord(
        query_id=query_id,
        query_type=QueryType.SUBGRAPH,
        baseline_tests=baseline_tests,
        dataset_tests=dataset_tests,
        sub_hits=sub_hits,
        super_hits=super_hits,
        exact_hit=exact,
        total_seconds=total_seconds,
        baseline_seconds=baseline_seconds,
        cache_population=cache_population,
    )


class TestStatisticsManager:
    def test_empty_aggregate(self):
        aggregate = StatisticsManager().aggregate()
        assert aggregate.num_queries == 0
        assert aggregate.test_speedup == 1.0

    def test_aggregate_counts(self):
        manager = StatisticsManager()
        manager.record(record(1))
        manager.record(record(2, sub_hits=0, super_hits=2))
        manager.record(record(3, sub_hits=0, exact=True, dataset_tests=0))
        aggregate = manager.aggregate()
        assert aggregate.num_queries == 3
        assert aggregate.num_hits == 3
        assert aggregate.num_exact_hits == 1
        assert aggregate.num_sub_hits == 1
        assert aggregate.num_super_hits == 2
        assert aggregate.hit_ratio == 1.0

    def test_speedup_definition(self):
        manager = StatisticsManager()
        manager.record(record(1, baseline_tests=20, dataset_tests=10))
        manager.record(record(2, baseline_tests=30, dataset_tests=15))
        aggregate = manager.aggregate()
        assert aggregate.test_speedup == pytest.approx(2.0)

    def test_infinite_speedup_when_no_tests(self):
        manager = StatisticsManager()
        manager.record(record(1, baseline_tests=10, dataset_tests=0, exact=True))
        assert manager.aggregate().test_speedup == float("inf")

    def test_time_speedup(self):
        manager = StatisticsManager()
        manager.record(record(1, total_seconds=0.01, baseline_seconds=0.04))
        assert manager.aggregate().time_speedup == pytest.approx(4.0)

    def test_tests_saved_property(self):
        r = record(1, baseline_tests=12, dataset_tests=4)
        assert r.tests_saved == 8

    def test_hit_percentages(self):
        manager = StatisticsManager()
        manager.record(record(1, sub_hits=2, super_hits=1, cache_population=10))
        manager.record(record(2, sub_hits=0, super_hits=0, cache_population=10))
        percentages = manager.per_record_hit_percentages()
        assert percentages[0] == pytest.approx(30.0)
        assert percentages[1] == 0.0

    def test_hit_percentages_without_population(self):
        manager = StatisticsManager()
        manager.record(record(1, sub_hits=2))  # population 0 -> denominator 1
        assert manager.per_record_hit_percentages()[0] == pytest.approx(200.0)

    def test_to_dict_is_json_safe(self):
        import json

        manager = StatisticsManager()
        # dataset_tests=0 with baseline_tests>0 -> infinite test_speedup,
        # the field JSON cannot carry; the enum query_type is the other one
        manager.record(record(1, baseline_tests=10, dataset_tests=0, exact=True))
        snapshot = manager.to_dict(include_records=True)
        encoded = json.dumps(snapshot)  # must not raise
        decoded = json.loads(encoded)
        assert decoded["num_queries"] == 1
        assert decoded["aggregate"]["test_speedup"] is None  # inf -> None
        assert decoded["aggregate"]["hit_ratio"] == 1.0
        assert decoded["records"][0]["query_type"] == "subgraph"

    def test_to_dict_excludes_records_by_default(self):
        manager = StatisticsManager()
        manager.record(record(1))
        assert "records" not in manager.to_dict()
        assert manager.to_dict()["num_queries"] == 1

    def test_to_dict_has_no_shard_keys_without_shards(self):
        manager = StatisticsManager()
        manager.record(record(1))
        snapshot = manager.to_dict()
        assert "shards" not in snapshot and "num_shards" not in snapshot

    def test_to_dict_per_shard_keys_json_round_trip(self):
        import json

        merged = StatisticsManager()
        shard0, shard1 = StatisticsManager(), StatisticsManager()
        merged.attach_shard("shard0", shard0)
        merged.attach_shard("shard1", shard1)
        # shard0 sees an infinite-speedup query (the JSON-hostile value) and
        # the merged stream carries the summed view
        shard0.record(record(1, baseline_tests=10, dataset_tests=0, exact=True))
        shard1.record(record(1, baseline_tests=6, dataset_tests=6, sub_hits=0))
        merged.record(record(1, baseline_tests=16, dataset_tests=6, exact=True))

        snapshot = merged.to_dict(include_records=True)
        decoded = json.loads(json.dumps(snapshot))  # full JSON round-trip

        assert decoded["num_shards"] == 2
        assert list(decoded["shards"]) == ["shard0", "shard1"]
        assert decoded["shards"]["shard0"]["num_queries"] == 1
        assert decoded["shards"]["shard0"]["aggregate"]["test_speedup"] is None
        assert decoded["shards"]["shard1"]["aggregate"]["test_speedup"] == 1.0
        # include_records propagates into the per-shard snapshots too
        assert decoded["shards"]["shard0"]["records"][0]["query_type"] == "subgraph"
        assert decoded["aggregate"]["num_exact_hits"] == 1

    def test_attach_shard_rejects_self(self):
        manager = StatisticsManager()
        with pytest.raises(ValueError):
            manager.attach_shard("self", manager)
        assert manager.shard_names() == []

    def test_reset(self):
        manager = StatisticsManager()
        manager.record(record(1))
        manager.reset()
        assert len(manager) == 0
