"""Tests for the SDF / molfile reader and writer."""

from __future__ import annotations

import pytest

from repro.errors import GraphFormatError
from repro.graph import molecule_dataset
from repro.graph.sdf import (
    format_molfile,
    format_sdf_text,
    load_sdf_file,
    parse_molfile,
    parse_sdf_text,
    save_sdf_file,
)

ASPIRIN_LIKE = """aspirin-fragment
  test

  4  3  0  0  0  0  0  0  0  0999 V2000
    0.0000    0.0000    0.0000 C   0  0  0  0  0  0  0  0  0  0  0  0
    1.0000    0.0000    0.0000 C   0  0  0  0  0  0  0  0  0  0  0  0
    2.0000    0.0000    0.0000 O   0  0  0  0  0  0  0  0  0  0  0  0
    3.0000    0.0000    0.0000 O   0  0  0  0  0  0  0  0  0  0  0  0
  1  2  1  0  0  0  0
  2  3  2  0  0  0  0
  2  4  1  0  0  0  0
M  END
"""


class TestParseMolfile:
    def test_atoms_and_bonds(self):
        graph = parse_molfile(ASPIRIN_LIKE)
        assert graph.num_vertices == 4
        assert graph.num_edges == 3
        assert graph.name == "aspirin-fragment"
        assert graph.label(0) == "C"
        assert graph.label(2) == "O"

    def test_bond_orders_as_edge_labels(self):
        graph = parse_molfile(ASPIRIN_LIKE)
        assert graph.edge_label(1, 2) == "2"
        assert graph.edge_label(0, 1) == "1"

    def test_too_short_rejected(self):
        with pytest.raises(GraphFormatError):
            parse_molfile("just\ntwo lines")

    def test_malformed_counts_rejected(self):
        bad = "name\n\n\nxx yy\n"
        with pytest.raises(GraphFormatError):
            parse_molfile(bad)

    def test_truncated_block_rejected(self):
        truncated = "\n".join(ASPIRIN_LIKE.splitlines()[:5])
        with pytest.raises(GraphFormatError):
            parse_molfile(truncated)

    def test_bond_to_missing_atom_rejected(self):
        bad = ASPIRIN_LIKE.replace("  2  4  1", "  2  9  1")
        with pytest.raises(GraphFormatError):
            parse_molfile(bad)


class TestSdfRoundTrip:
    def test_multi_molecule_parse(self):
        text = ASPIRIN_LIKE + "$$$$\n" + ASPIRIN_LIKE + "$$$$\n"
        graphs = parse_sdf_text(text)
        assert len(graphs) == 2
        assert graphs[0].graph_id == 0
        assert graphs[1].graph_id == 1

    def test_round_trip_preserves_structure(self):
        dataset = molecule_dataset(5, min_vertices=5, max_vertices=10, rng=9)
        text = format_sdf_text(dataset)
        back = parse_sdf_text(text)
        assert len(back) == len(dataset)
        for original, restored in zip(dataset, back):
            assert restored.num_vertices == original.num_vertices
            assert restored.num_edges == original.num_edges
            assert restored.label_counts() == original.label_counts()

    def test_file_round_trip(self, tmp_path):
        dataset = molecule_dataset(3, min_vertices=5, max_vertices=8, rng=10)
        path = tmp_path / "dataset.sdf"
        save_sdf_file(dataset, path)
        back = load_sdf_file(path)
        assert len(back) == 3

    def test_empty_dataset(self):
        assert format_sdf_text([]) == ""
        assert parse_sdf_text("") == []

    def test_format_molfile_contains_counts_and_end(self):
        graph = molecule_dataset(1, min_vertices=6, max_vertices=6, rng=11)[0]
        block = format_molfile(graph)
        assert "V2000" in block
        assert block.strip().endswith("M  END")
