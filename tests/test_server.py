"""Query serving subsystem: end-to-end equivalence, batching, backpressure.

The acceptance property mirrors the concurrent engine's: a ≥200-query mixed
sub/supergraph trace replayed *through the HTTP server* (batched, concurrent
clients) returns exactly the answer sets an in-process ``run_queries`` pass
produces.  On top of that: admission control rejects with 429 when the
bounded queue is full, shutdown drains gracefully, ``/metrics`` serialises
the statistics snapshot, and a snapshot-configured server restarts warm.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import AdmissionRejectedError, ServerClosedError
from repro.graph import molecule_dataset
from repro.graph.graph import Graph
from repro.isomorphism.base import MatchResult, SubgraphMatcher
from repro.isomorphism.vf2 import VF2Matcher
from repro.methods import DirectSIMethod
from repro.query_model import Query, QueryType
from repro.runtime import GCConfig, GraphCacheSystem
from repro.server import QueryServer, RequestBatcher
from repro.server.protocol import query_from_payload, query_to_payload
from repro.workload import QueryServerClient, generate_trace, replay_trace


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(16, min_vertices=7, max_vertices=13, rng=77)


@pytest.fixture(scope="module")
def trace(dataset):
    return generate_trace(dataset, 200, skew="zipfian", query_type="mixed", seed=13)


@pytest.fixture(scope="module")
def reference_answers(dataset, trace):
    """Sequential in-process execution is the reference arm."""
    with GraphCacheSystem(dataset, GCConfig(cache_capacity=25, window_size=5)) as system:
        clones = [Query(graph=q.graph.copy(), query_type=q.query_type) for q in trace]
        return [frozenset(report.answer) for report in system.run_queries(clones)]


class SlowMatcher(SubgraphMatcher):
    """VF2 with a fixed pre-test sleep — makes queue buildup deterministic."""

    name = "vf2+slow"

    def __init__(self, delay_seconds: float) -> None:
        self._inner = VF2Matcher()
        self._delay = delay_seconds

    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        time.sleep(self._delay)
        return self._inner.find_embedding(query, target)


class TestEndToEndEquivalence:
    def test_trace_is_mixed_and_large(self, trace):
        assert len(trace) >= 200
        assert {q.query_type for q in trace} == {QueryType.SUBGRAPH, QueryType.SUPERGRAPH}

    def test_server_replay_matches_in_process(self, dataset, trace, reference_answers):
        config = GCConfig(cache_capacity=25, window_size=5)
        with QueryServer(dataset, config, max_batch_size=4, max_queue_depth=256) as server:
            client = QueryServerClient.for_server(server)
            result = replay_trace(client, trace, num_threads=4)
        assert result.served == len(trace)
        assert result.rejected == 0 and result.errors == 0
        assert result.answers() == reference_answers
        # batching actually coalesced (concurrent clients, 4-deep batches)
        batches = server.batcher.stats()
        assert batches.served == len(trace)
        assert batches.largest_batch > 1

    def test_single_query_roundtrip(self, dataset):
        with QueryServer(dataset, GCConfig(cache_capacity=10, window_size=5)) as server:
            client = QueryServerClient.for_server(server)
            payload = client.run_query(dataset[0].copy(), "subgraph")
        answer = set(payload["answer"])
        assert dataset[0].graph_id in answer
        assert payload["query_type"] == "subgraph"
        assert payload["stage_seconds"]  # per-stage latency is reported
        assert payload["server"]["batch_size"] >= 1


class TestAdmissionControl:
    def test_full_queue_rejects_with_429(self, dataset):
        method = DirectSIMethod(verifier=SlowMatcher(0.01))
        with QueryServer(
            dataset,
            GCConfig(cache_capacity=10, window_size=5),
            method=method,
            max_batch_size=1,
            max_queue_depth=1,
        ) as server:
            trace = generate_trace(dataset, 24, skew="uniform", seed=5)
            client = QueryServerClient.for_server(server)
            result = replay_trace(client, trace, num_threads=8)
        assert result.rejected > 0
        assert result.errors == 0
        assert server.batcher.stats().rejected == result.rejected
        # every rejection carried the protocol's error payload
        rejected = [event for event in result.events if event.status == 429]
        assert all("queue is full" in event.error for event in rejected)

    def test_served_plus_rejected_covers_trace(self, dataset):
        method = DirectSIMethod(verifier=SlowMatcher(0.005))
        with QueryServer(dataset, method=method, max_batch_size=2,
                         max_queue_depth=2) as server:
            trace = generate_trace(dataset, 20, skew="uniform", seed=6)
            client = QueryServerClient.for_server(server)
            result = replay_trace(client, trace, num_threads=6)
        assert result.served + result.rejected == len(trace)


class TestBatcher:
    def test_coalesces_up_to_max_batch(self, dataset):
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5)) as system:
            batcher = RequestBatcher(system, max_batch_size=4,
                                     max_delay_seconds=0.05, max_queue_depth=32)
            queries = [Query(graph=dataset[i % len(dataset)].copy()) for i in range(8)]
            futures = [batcher.submit(query) for query in queries]
            served = [future.result(timeout=30) for future in futures]
            batcher.close()
        assert all(1 <= item.batch_size <= 4 for item in served)
        assert max(item.batch_size for item in served) > 1
        assert all(item.queue_seconds >= 0 for item in served)
        stats = batcher.stats()
        assert stats.served == 8 and stats.rejected == 0

    def test_close_drains_queued_queries(self, dataset):
        method = DirectSIMethod(verifier=SlowMatcher(0.002))
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5),
                              method=method) as system:
            batcher = RequestBatcher(system, max_batch_size=2, max_queue_depth=32)
            futures = [batcher.submit(Query(graph=dataset[0].copy())) for _ in range(10)]
            batcher.close(drain=True)
            results = [future.result(timeout=30) for future in futures]
        assert len(results) == 10
        with pytest.raises(ServerClosedError):
            batcher.submit(Query(graph=dataset[0].copy()))

    def test_close_without_drain_fails_pending(self, dataset):
        method = DirectSIMethod(verifier=SlowMatcher(0.02))
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5),
                              method=method) as system:
            batcher = RequestBatcher(system, max_batch_size=1, max_queue_depth=32)
            futures = [batcher.submit(Query(graph=dataset[0].copy())) for _ in range(6)]
            batcher.close(drain=False)
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=30))
                except ServerClosedError:
                    outcomes.append(None)
        # the in-flight head may complete; everything else was refused
        assert None in outcomes

    def test_rejects_when_queue_full(self, dataset):
        method = DirectSIMethod(verifier=SlowMatcher(0.05))
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5),
                              method=method) as system:
            batcher = RequestBatcher(system, max_batch_size=1, max_queue_depth=1)
            accepted = []
            with pytest.raises(AdmissionRejectedError):
                for _ in range(20):
                    accepted.append(batcher.submit(Query(graph=dataset[0].copy())))
            batcher.close(drain=True)
            for future in accepted:
                future.result(timeout=30)


class TestObservabilityEndpoints:
    def test_metrics_snapshot(self, dataset):
        with QueryServer(dataset, GCConfig(cache_capacity=10, window_size=5)) as server:
            client = QueryServerClient.for_server(server)
            for graph in dataset[:6]:
                client.run_query(graph.copy(), "subgraph")
            metrics = client.metrics()
        statistics = metrics["statistics"]
        assert statistics["num_queries"] == 6
        assert 0.0 <= statistics["aggregate"]["hit_ratio"] <= 1.0
        stages = {row["stage"] for row in statistics["stage_breakdown"]}
        assert {"filter", "verify"} <= stages
        assert metrics["cache"]["population"] >= 1
        json.dumps(metrics)  # JSON-safe end to end

    def test_stats_counters(self, dataset):
        with QueryServer(dataset, GCConfig(cache_capacity=10, window_size=5)) as server:
            client = QueryServerClient.for_server(server)
            client.run_query(dataset[0].copy())
            stats = client.stats()
        assert stats["batcher"]["submitted"] == 1
        assert stats["server"]["uptime_seconds"] >= 0
        assert stats["dataset_size"] == len(dataset)
        json.dumps(stats)

    def test_malformed_and_unknown_requests(self, dataset):
        with QueryServer(dataset) as server:
            client = QueryServerClient.for_server(server)
            status, payload = client._request("POST", "/query", {"not-a-graph": 1})
            assert status == 400 and "graph" in payload["error"]
            status, _ = client._request("GET", "/nope")
            assert status == 404
            status, _ = client._request("POST", "/nope", {})
            assert status == 404
            status, payload = client._request("POST", "/query",
                                              {"graph": {"vertices": "bogus"}})
            assert status == 400 and "malformed" in payload["error"]

    def test_concurrent_metrics_while_serving(self, dataset):
        """/metrics stays consistent while queries are in flight."""
        with QueryServer(dataset, GCConfig(cache_capacity=10, window_size=5)) as server:
            client = QueryServerClient.for_server(server)
            trace = generate_trace(dataset, 30, skew="uniform", seed=9)
            errors = []

            def poll():
                poller = QueryServerClient.for_server(server)
                for _ in range(10):
                    try:
                        json.dumps(poller.metrics())
                    except Exception as exc:  # pragma: no cover - failure path
                        errors.append(exc)
                poller.close()

            thread = threading.Thread(target=poll)
            thread.start()
            result = replay_trace(client, trace, num_threads=2)
            thread.join()
        assert not errors
        assert result.served == len(trace)


class TestSnapshotLifecycle:
    def test_restart_starts_warm(self, dataset, tmp_path):
        snapshot = tmp_path / "cache-snapshot.json"
        trace = generate_trace(dataset, 40, skew="zipfian", seed=21)
        config = GCConfig(cache_capacity=15, window_size=5)
        with QueryServer(dataset, config, snapshot_path=snapshot) as server:
            client = QueryServerClient.for_server(server)
            replay_trace(client, trace, num_threads=2)
            population = len(server.system.cache)
        assert snapshot.exists()
        assert population > 0

        with QueryServer(dataset, config, snapshot_path=snapshot) as restarted:
            assert restarted.restored_entries == population
            assert len(restarted.system.cache) == population
            # a warm-started server answers correctly straight away
            client = QueryServerClient.for_server(restarted)
            payload = client.run_query(dataset[0].copy(), "subgraph")
            assert dataset[0].graph_id in set(payload["answer"])

    def test_no_snapshot_path_writes_nothing(self, dataset, tmp_path):
        with QueryServer(dataset) as server:
            client = QueryServerClient.for_server(server)
            client.run_query(dataset[0].copy())
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_snapshot_fails_loudly(self, dataset, tmp_path):
        """A corrupt warm-cache file must raise at startup, not be silently
        discarded (and then overwritten at shutdown)."""
        import json as _json

        snapshot = tmp_path / "corrupt.json"
        snapshot.write_text("{not json", encoding="utf-8")
        with pytest.raises(_json.JSONDecodeError):
            QueryServer(dataset, snapshot_path=snapshot)
        sharded = GCConfig(cache_capacity=10, window_size=5, num_shards=2)
        with pytest.raises(_json.JSONDecodeError):
            QueryServer(dataset, sharded, snapshot_path=snapshot)
        assert snapshot.read_text(encoding="utf-8") == "{not json"  # untouched


class TestShardedServing:
    def test_sharded_metrics_and_snapshot_fan_out(self, dataset, tmp_path):
        """The server accepts a sharded system transparently: per-shard
        /metrics sections, and snapshots fan out to per-shard files."""
        config = GCConfig(cache_capacity=25, window_size=5, num_shards=2)
        snapshot = tmp_path / "snap.json"
        with QueryServer(dataset, config, snapshot_path=snapshot) as server:
            client = QueryServerClient.for_server(server)
            for graph in dataset[:6]:
                client.run_query(graph.copy(), "subgraph")
            metrics = client.metrics()
        statistics = metrics["statistics"]
        assert statistics["num_queries"] == 6
        assert statistics["num_shards"] == 2
        assert set(statistics["shards"]) == {"shard0", "shard1"}
        assert all(shard["num_queries"] == 6 for shard in statistics["shards"].values())
        assert metrics["router"]["num_shards"] == 2
        assert [row["shard"] for row in metrics["shards"]] == [0, 1]
        json.dumps(metrics)  # JSON-safe end to end

        # snapshot fan-out: manifest + one file per shard, restart warm
        assert snapshot.exists()
        assert (tmp_path / "snap-shard0.json").exists()
        assert (tmp_path / "snap-shard1.json").exists()
        with QueryServer(dataset, config, snapshot_path=snapshot) as restarted:
            assert restarted.restored_entries > 0

        # a different shard layout cold-starts instead of mis-restoring
        other = GCConfig(cache_capacity=25, window_size=5, num_shards=4)
        with QueryServer(dataset, other, snapshot_path=tmp_path / "snap.json") as cold:
            assert cold.restored_entries == 0

    def test_unsharded_restore_ignores_sharded_manifest(self, dataset, tmp_path):
        snapshot = tmp_path / "snap.json"
        sharded = GCConfig(cache_capacity=25, window_size=5, num_shards=2)
        with QueryServer(dataset, sharded, snapshot_path=snapshot) as server:
            client = QueryServerClient.for_server(server)
            client.run_query(dataset[0].copy(), "subgraph")
        with QueryServer(dataset, GCConfig(cache_capacity=25, window_size=5),
                         snapshot_path=snapshot) as unsharded:
            assert unsharded.restored_entries == 0


class TestLifecycleEdgeCases:
    def test_bind_failure_cleans_up(self, dataset):
        """A failed port bind must not leak the system or batcher thread."""
        with QueryServer(dataset) as server:
            before = threading.active_count()
            with pytest.raises(OSError):
                QueryServer(dataset, port=server.port)  # port already bound
            assert threading.active_count() == before  # no dispatcher leaked

    def test_replay_percentiles_nearest_rank(self):
        from repro.workload import ReplayEvent, ReplayResult

        result = ReplayResult(trace_name="t", events=[
            ReplayEvent(index=i, status=200, latency_seconds=float(i + 1))
            for i in range(4)
        ])
        tails = result.latency_percentiles((25, 50, 99, 100))
        assert tails == {"p25": 1.0, "p50": 2.0, "p99": 4.0, "p100": 4.0}


class TestProtocol:
    def test_query_payload_roundtrip(self, dataset):
        query = Query(graph=dataset[3].copy(), query_type=QueryType.SUPERGRAPH,
                      metadata={"mode": "repeat"})
        rebuilt = query_from_payload(query_to_payload(query))
        assert rebuilt.query_type is QueryType.SUPERGRAPH
        assert rebuilt.metadata == {"mode": "repeat"}
        assert rebuilt.graph.to_dict() == query.graph.to_dict()
