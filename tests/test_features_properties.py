"""Property-based tests: feature monotonicity under subgraph containment.

The FTV soundness argument rests on one property: if ``q ⊆ G`` then the
feature multiset of ``q`` is contained in that of ``G``.  We check it with
hypothesis for every feature family by extracting random connected subgraphs
(guaranteed containment by construction).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.features import (
    CompositeExtractor,
    CycleFeatureExtractor,
    FeatureExtractor,
    Fingerprint,
    PathFeatureExtractor,
    StarFeatureExtractor,
)
from repro.graph import molecule_graph
from repro.graph.operations import random_connected_subgraph

EXTRACTORS = [
    PathFeatureExtractor(max_length=2),
    PathFeatureExtractor(max_length=3),
    StarFeatureExtractor(max_leaves=3),
    CycleFeatureExtractor(max_length=6),
    CompositeExtractor([PathFeatureExtractor(2), CycleFeatureExtractor(5)]),
]


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), size=st.integers(10, 20), sub_size=st.integers(3, 9))
def test_feature_monotonicity(seed, size, sub_size):
    rng = random.Random(seed)
    target = molecule_graph(size, rng=rng)
    query = random_connected_subgraph(target, min(sub_size, size), rng=rng)
    for extractor in EXTRACTORS:
        query_features = extractor.extract(query)
        target_features = extractor.extract(target)
        assert FeatureExtractor.multiset_contains(target_features, query_features), (
            f"{extractor.name} violated monotonicity"
        )


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), size=st.integers(10, 18), sub_size=st.integers(3, 8))
def test_fingerprint_monotonicity(seed, size, sub_size):
    rng = random.Random(seed)
    target = molecule_graph(size, rng=rng)
    query = random_connected_subgraph(target, min(sub_size, size), rng=rng)
    extractor = PathFeatureExtractor(max_length=2)
    target_fp = Fingerprint.from_features(extractor.extract(target), num_bits=512)
    query_fp = Fingerprint.from_features(extractor.extract(query), num_bits=512)
    assert target_fp.contains_all(query_fp)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), size=st.integers(6, 16))
def test_path_features_invariant_under_relabelling(seed, size):
    graph = molecule_graph(size, rng=seed)
    permuted = graph.relabel_vertices(
        {vertex: f"v{index}" for index, vertex in enumerate(reversed(graph.vertices()))}
    )
    extractor = PathFeatureExtractor(max_length=3)
    assert extractor.extract(graph) == extractor.extract(permuted)
