"""Fault injection: stale/corrupt summaries and cost-budget backpressure.

The planner's failure contract: a shard whose summary cannot be trusted
(explicitly stale, or corrupted out of band — the integrity seal no longer
matches the content) must be **scattered to anyway** — degraded to full
scatter for that shard, never silently dropping answers — and the event
must be visible as ``summary_fallbacks`` in the planner stats and the
server's ``/metrics``.  The cost-based admission half: a hot shard whose
outstanding estimated cost exhausts its budget 429s *alone*, naming the
shard, while queries for the other shards keep flowing.
"""

from __future__ import annotations

import time
from collections import Counter

import pytest

from repro.errors import AdmissionRejectedError
from repro.graph import label_clustered_dataset, molecule_dataset
from repro.graph.graph import Graph
from repro.graph.operations import random_connected_subgraph
from repro.isomorphism.base import MatchResult, SubgraphMatcher
from repro.isomorphism.vf2 import VF2Matcher
from repro.methods import DirectSIMethod
from repro.query_model import Query, QueryType
from repro.runtime.config import GCConfig
from repro.server import QueryServer
from repro.server.batcher import RequestBatcher
from repro.sharding import ShardedGraphCacheSystem
from repro.workload import QueryServerClient, generate_trace, replay_trace


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(12, min_vertices=6, max_vertices=12, rng=41)


@pytest.fixture(scope="module")
def trace(dataset):
    return generate_trace(dataset, 40, skew="zipfian", query_type="mixed", seed=7)


def clone(trace):
    return [Query(graph=q.graph.copy(), query_type=q.query_type) for q in trace]


def reference_answers(dataset, trace):
    config = GCConfig(cache_enabled=False, num_shards=2)
    with ShardedGraphCacheSystem(dataset, config) as system:
        return [frozenset(r.answer) for r in system.run_queries(clone(trace))]


class TestSummaryFaults:
    def test_stale_summary_degrades_to_full_scatter(self, dataset, trace):
        expected = reference_answers(dataset, trace)
        config = GCConfig(cache_capacity=10, window_size=3,
                          num_shards=2, scatter_mode="short-circuit")
        with ShardedGraphCacheSystem(dataset, config) as system:
            system.summaries[0].mark_stale()
            assert not system.summaries[0].usable()
            queries = clone(trace)
            answers = [frozenset(r.answer) for r in system.run_queries(queries)]
            stats = system.planner.stats.to_dict()
            # never silently drop answers...
            assert answers == expected
            # ...every query scattered to the untrusted shard...
            assert all(0 in q.metadata["scatter"]["targets"] for q in queries)
            assert all(0 in q.metadata["scatter"]["fallbacks"] for q in queries)
            # ...and the degradation is counted
            assert stats["summary_fallbacks"] == len(trace)
            assert stats["per_shard_skipped"][0] == 0

    def test_corrupted_summary_breaks_the_seal_and_degrades(self, dataset, trace):
        expected = reference_answers(dataset, trace)
        config = GCConfig(cache_capacity=10, window_size=3,
                          num_shards=2, scatter_mode="short-circuit")
        with ShardedGraphCacheSystem(dataset, config) as system:
            # out-of-band corruption: an empty union vector would "prove"
            # every subgraph query unanswerable on shard 1 — the seal check
            # must refuse to trust it rather than drop shard 1's answers
            system.summaries[1].union_features = Counter()
            system.summaries[1].label_set = frozenset()
            assert not system.summaries[1].usable()
            answers = [frozenset(r.answer) for r in system.run_queries(clone(trace))]
            assert answers == expected
            assert system.planner.stats.to_dict()["summary_fallbacks"] >= len(trace)

    def test_refresh_restores_pruning_after_corruption(self, dataset, trace):
        config = GCConfig(cache_capacity=10, window_size=3,
                          num_shards=2, scatter_mode="short-circuit")
        with ShardedGraphCacheSystem(dataset, config) as system:
            system.summaries[0].union_features = Counter()
            assert not system.summaries[0].usable()
            system.refresh_summaries()
            assert system.summaries[0].usable()
            answers = [frozenset(r.answer) for r in system.run_queries(clone(trace))]
            assert answers == reference_answers(dataset, trace)
            assert system.planner.stats.to_dict()["summary_fallbacks"] == 0

    def test_fallbacks_are_visible_in_server_metrics(self, dataset, trace):
        config = GCConfig(cache_capacity=10, window_size=3,
                          num_shards=2, scatter_mode="short-circuit")
        with QueryServer(dataset, config, max_batch_size=2,
                         max_queue_depth=256) as server:
            server.system.summaries[0].mark_stale()
            client = QueryServerClient.for_server(server)
            result = replay_trace(client, generate_trace(
                dataset, 10, skew="uniform", query_type="mixed", seed=3),
                num_threads=2)
            assert result.served == 10
            metrics = client.metrics()
            scatter = metrics["scatter"]
            assert scatter["mode"] == "short-circuit"
            assert scatter["stats"]["summary_fallbacks"] >= 10
            assert scatter["summaries"][0]["usable"] is False
            assert scatter["summaries"][0]["stale"] is True

    def test_all_shards_pruned_yields_sound_empty_answer(self, dataset):
        """A query no shard can answer (unknown label) short-circuits to an
        empty answer without scattering anywhere — matching ground truth."""
        config = GCConfig(num_shards=2, scatter_mode="short-circuit")
        alien = Graph()
        alien.add_vertex(0, "Zz")
        alien.add_vertex(1, "Zz")
        alien.add_edge(0, 1)
        with ShardedGraphCacheSystem(dataset, config) as system:
            query = Query(graph=alien, query_type=QueryType.SUBGRAPH)
            report = system.run_query(query)
            assert report.answer == set()
            assert query.metadata["scatter"]["fanout"] == 0
            stats = system.planner.stats.to_dict()
            assert stats["zero_target_queries"] == 1
        config_full = GCConfig(num_shards=2, cache_enabled=False)
        with ShardedGraphCacheSystem(dataset, config_full) as system:
            ground_truth = system.run_query(
                Query(graph=alien.copy(), query_type=QueryType.SUBGRAPH))
            assert ground_truth.answer == set()


class _SlowMatcher(SubgraphMatcher):
    """VF2 with a fixed per-test sleep, so batches stay in flight while the
    admission test submits follow-up queries."""

    name = "vf2+sleep"

    def __init__(self, latency_seconds: float) -> None:
        self._inner = VF2Matcher()
        self._latency = latency_seconds

    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        time.sleep(self._latency)
        return self._inner.find_embedding(query, target)


class TestCostBasedAdmission:
    @pytest.fixture()
    def clustered(self):
        return label_clustered_dataset(2, 6, num_vertices=(6, 9), rng=11)

    def _cluster_query(self, dataset, cluster: int, seed: int) -> Query:
        source = next(g for g in dataset if str(g.graph_id).startswith(f"c{cluster}-"))
        pattern = random_connected_subgraph(source, min(4, source.num_vertices), rng=seed)
        return Query(graph=pattern, query_type=QueryType.SUBGRAPH)

    def test_hot_shard_rejects_while_cold_shard_admits(self, clustered):
        config = GCConfig(cache_enabled=False, num_shards=2,
                          scatter_mode="short-circuit")
        with ShardedGraphCacheSystem(
            clustered, config,
            method_factory=lambda: DirectSIMethod(verifier=_SlowMatcher(0.05)),
        ) as system:
            # observe real per-test costs first, so estimates are honest
            system.run_queries([self._cluster_query(clustered, 0, 1),
                                self._cluster_query(clustered, 1, 2)])
            batcher = RequestBatcher(
                system, max_batch_size=1, max_delay_seconds=0.0,
                max_queue_depth=64, admission_mode="cost-based",
                max_shard_cost_seconds=0.4,
            )
            try:
                # ~6 candidates × 50ms ≈ 0.3s estimated per hot-shard query:
                # the first fits the 0.4s budget, the second must not
                hot_first = batcher.submit(self._cluster_query(clustered, 0, 3))
                with pytest.raises(AdmissionRejectedError) as rejected:
                    batcher.submit(self._cluster_query(clustered, 0, 4))
                assert rejected.value.shard == 0
                assert rejected.value.estimated_cost_seconds > 0
                # the cold shard keeps flowing while shard 0 is saturated
                cold = batcher.submit(self._cluster_query(clustered, 1, 5))
                assert hot_first.result(timeout=30).report is not None
                assert cold.result(timeout=30).report is not None
                stats = batcher.stats()
                assert stats.rejected_cost == 1
                assert stats.rejected == 1
                assert stats.admission_mode == "cost-based"
            finally:
                batcher.close()
            # reservations fully released after completion
            assert batcher.stats().shard_outstanding == {}

    def test_unsharded_cost_rejection_names_no_shard(self, dataset):
        """Cost-based admission over a plain (unsharded) system prices it as
        one pool: the 429 must say 'system cost budget exhausted', never
        point the operator at a shard that does not exist."""
        from repro.runtime.system import GraphCacheSystem

        config = GCConfig(cache_enabled=False, admission_mode="cost-based")
        system = GraphCacheSystem(
            dataset, config, method=DirectSIMethod(verifier=_SlowMatcher(0.05)))
        source = dataset[0]
        make_query = lambda seed: Query(  # noqa: E731 - tiny local factory
            graph=random_connected_subgraph(source, min(4, source.num_vertices),
                                            rng=seed),
            query_type=QueryType.SUBGRAPH,
        )
        system.run_query(make_query(1))  # observe a real per-test cost
        batcher = RequestBatcher(system, max_batch_size=1,
                                 max_delay_seconds=0.0, max_queue_depth=64,
                                 admission_mode="cost-based",
                                 max_shard_cost_seconds=0.4)
        try:
            first = batcher.submit(make_query(2))
            with pytest.raises(AdmissionRejectedError) as rejected:
                batcher.submit(make_query(3))
            assert rejected.value.shard is None
            assert "system cost budget exhausted" in str(rejected.value)
            assert "shard" not in str(rejected.value)
            assert first.result(timeout=30).report is not None
        finally:
            batcher.close()

    def test_queue_depth_mode_never_prices_shards(self, clustered):
        config = GCConfig(cache_enabled=False, num_shards=2,
                          scatter_mode="short-circuit")
        with ShardedGraphCacheSystem(
            clustered, config,
            method_factory=lambda: DirectSIMethod(verifier=VF2Matcher()),
        ) as system:
            batcher = RequestBatcher(system, max_batch_size=2,
                                     admission_mode="queue-depth")
            try:
                futures = [batcher.submit(self._cluster_query(clustered, 0, seed))
                           for seed in range(6)]
                for future in futures:
                    assert future.result(timeout=30).report is not None
                stats = batcher.stats()
                assert stats.rejected_cost == 0
                assert stats.shard_outstanding == {}
            finally:
                batcher.close()
