"""Unit tests for the Ullmann matcher (and agreement with VF2)."""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError
from repro.graph import Graph, complete_graph, cycle_graph, molecule_graph, path_graph
from repro.graph.operations import random_connected_subgraph
from repro.isomorphism import UllmannMatcher, VF2Matcher


class TestBasicMatching:
    def test_path_in_triangle(self, triangle):
        assert UllmannMatcher().is_subgraph(path_graph(["C", "O"]), triangle)

    def test_missing_label_rejected(self, triangle):
        assert not UllmannMatcher().is_subgraph(path_graph(["C", "S"]), triangle)

    def test_empty_query(self, triangle):
        result = UllmannMatcher().find_embedding(Graph(), triangle)
        assert result.found and result.mapping == {}

    def test_non_induced_semantics(self):
        path = path_graph(["C", "C", "C"])
        triangle = cycle_graph(["C", "C", "C"])
        assert UllmannMatcher().is_subgraph(path, triangle)

    def test_refinement_prunes_impossible(self):
        # star with 3 leaves cannot embed into a path
        star = Graph()
        star.add_vertex(0, "C")
        for leaf in range(1, 4):
            star.add_vertex(leaf, "C")
            star.add_edge(0, leaf)
        target = path_graph(["C"] * 5)
        assert not UllmannMatcher().is_subgraph(star, target)

    def test_mapping_valid(self, square_with_tail):
        query = path_graph(["C", "N", "O"])
        result = UllmannMatcher().find_embedding(query, square_with_tail)
        assert result.found
        mapping = result.mapping
        assert len(set(mapping.values())) == query.num_vertices
        for u, v in query.edges():
            assert square_with_tail.has_edge(mapping[u], mapping[v])

    def test_edge_labels_respected(self):
        target = Graph()
        target.add_vertices([(0, "C"), (1, "C")])
        target.add_edge(0, 1, "single")
        query = Graph()
        query.add_vertices([(0, "C"), (1, "C")])
        query.add_edge(0, 1, "double")
        assert not UllmannMatcher().is_subgraph(query, target)

    def test_budget_enforced(self):
        query = complete_graph(["C"] * 6)
        target = complete_graph(["C"] * 10)
        with pytest.raises(BudgetExceededError):
            UllmannMatcher(node_budget=3).find_embedding(query, target)


class TestEnumeration:
    def test_edge_in_triangle(self):
        embeddings = UllmannMatcher().find_all_embeddings(
            path_graph(["C", "C"]), cycle_graph(["C", "C", "C"])
        )
        assert len(embeddings) == 6

    def test_limit(self):
        embeddings = UllmannMatcher().find_all_embeddings(
            path_graph(["C", "C"]), complete_graph(["C"] * 5), limit=4
        )
        assert len(embeddings) == 4


class TestAgreementWithVF2:
    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_on_extracted_queries(self, seed):
        target = molecule_graph(14, rng=seed)
        query = random_connected_subgraph(target, 6, rng=seed + 100)
        assert UllmannMatcher().is_subgraph(query, target)
        assert VF2Matcher().is_subgraph(query, target)

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_on_unrelated_graphs(self, seed):
        query = molecule_graph(7, rng=seed)
        target = molecule_graph(15, rng=seed + 50)
        assert UllmannMatcher().is_subgraph(query, target) == VF2Matcher().is_subgraph(
            query, target
        )
