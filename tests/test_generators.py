"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graph import (
    ATOM_ALPHABET,
    molecule_dataset,
    molecule_graph,
    power_law_graph,
    protein_like_graph,
    random_labelled_graph,
    synthetic_dataset,
)
from repro.graph.operations import average_degree


class TestMoleculeGraph:
    def test_connected_and_sized(self):
        graph = molecule_graph(20, rng=3)
        assert graph.num_vertices == 20
        assert graph.is_connected()

    def test_labels_from_atom_alphabet(self):
        graph = molecule_graph(30, rng=4)
        atoms = {label for label, _ in ATOM_ALPHABET}
        assert graph.label_set() <= atoms

    def test_sparse_like_a_molecule(self):
        graph = molecule_graph(40, rng=5)
        assert average_degree(graph) < 4.0

    def test_reproducible_with_seed(self):
        first = molecule_graph(15, rng=99)
        second = molecule_graph(15, rng=99)
        assert first.wl_hash() == second.wl_hash()

    def test_single_atom(self):
        graph = molecule_graph(1, rng=0)
        assert graph.num_vertices == 1
        assert graph.num_edges == 0

    def test_zero_atoms_rejected(self):
        with pytest.raises(GraphError):
            molecule_graph(0)


class TestMoleculeDataset:
    def test_size_and_ids(self):
        dataset = molecule_dataset(10, min_vertices=5, max_vertices=9, rng=1)
        assert len(dataset) == 10
        assert [graph.graph_id for graph in dataset] == list(range(10))

    def test_vertex_count_bounds(self):
        dataset = molecule_dataset(15, min_vertices=5, max_vertices=9, rng=2)
        assert all(5 <= graph.num_vertices <= 9 for graph in dataset)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(GraphError):
            molecule_dataset(3, min_vertices=10, max_vertices=5)

    def test_negative_count_rejected(self):
        with pytest.raises(GraphError):
            molecule_dataset(-1)

    def test_accepts_shared_rng(self):
        rng = random.Random(7)
        dataset = molecule_dataset(5, rng=rng)
        assert len(dataset) == 5


class TestRandomLabelledGraph:
    def test_connected_by_default(self):
        graph = random_labelled_graph(25, 0.05, rng=3)
        assert graph.is_connected()

    def test_label_alphabet_size(self):
        graph = random_labelled_graph(30, 0.1, num_labels=3, rng=4)
        assert graph.label_set() <= {"L0", "L1", "L2"}

    def test_probability_one_gives_complete_graph(self):
        graph = random_labelled_graph(8, 1.0, rng=5)
        assert graph.num_edges == 8 * 7 // 2

    def test_invalid_probability_rejected(self):
        with pytest.raises(GraphError):
            random_labelled_graph(5, 1.5)

    def test_zero_vertices(self):
        graph = random_labelled_graph(0, 0.5, rng=1)
        assert graph.num_vertices == 0


class TestPowerLawGraph:
    def test_sizes(self):
        graph = power_law_graph(50, edges_per_vertex=2, rng=6)
        assert graph.num_vertices == 50
        assert graph.is_connected()

    def test_hubs_exist(self):
        graph = power_law_graph(120, edges_per_vertex=2, rng=7)
        assert max(graph.degree_sequence()) >= 6

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            power_law_graph(0)
        with pytest.raises(GraphError):
            power_law_graph(10, edges_per_vertex=0)


class TestProteinLikeGraph:
    def test_backbone_present(self):
        graph = protein_like_graph(30, rng=8)
        assert all(graph.has_edge(i, i + 1) for i in range(29))

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            protein_like_graph(1)


class TestSyntheticDataset:
    @pytest.mark.parametrize("kind", ["molecule", "random", "powerlaw", "protein"])
    def test_all_kinds(self, kind):
        dataset = synthetic_dataset(4, kind=kind, rng=9)
        assert len(dataset) == 4
        assert all(graph.num_vertices > 0 for graph in dataset)

    def test_unknown_kind_rejected(self):
        with pytest.raises(GraphError):
            synthetic_dataset(2, kind="bogus")
