"""Tests for the dashboard layer (ASCII viz, journey, workload view, SVG)."""

from __future__ import annotations

import pytest

from repro.dashboard import (
    DeveloperMonitor,
    QueryJourney,
    WorkloadRunView,
    bar_chart,
    format_table,
    id_grid,
    policy_speedup_table,
    render_adjacency,
    render_graph_svg,
    replacement_comparison,
    save_graph_svg,
    sparkline,
)
from repro.graph import molecule_dataset, molecule_graph
from repro.graph.operations import random_connected_subgraph
from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import WorkloadGenerator, compare_policies, run_workload
from tests.conftest import make_subgraph_queries


class TestAsciiPrimitives:
    def test_bar_chart_contains_labels_and_bars(self):
        chart = bar_chart({"LRU": 1.0, "HD": 2.0})
        assert "LRU" in chart and "HD" in chart
        assert "█" in chart

    def test_bar_chart_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_bar_chart_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart

    def test_id_grid_highlights(self):
        grid = id_grid(range(10), {3, 7}, columns=5)
        assert "[3]" in grid and "[7]" in grid
        assert grid.count("\n") == 1  # two rows of five

    def test_id_grid_empty(self):
        assert id_grid([], []) == "(empty)"

    def test_format_table_alignment(self):
        table = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_sparkline_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4
        assert sparkline([]) == ""
        assert len(sparkline(list(range(100)), width=20)) == 20

    def test_render_adjacency(self, triangle):
        text = render_adjacency(triangle)
        assert "0 (C):" in text


@pytest.fixture(scope="module")
def demo_run():
    """A small system with a warm cache and one interesting query report."""
    dataset = molecule_dataset(20, min_vertices=8, max_vertices=14, rng=5)
    system = GraphCacheSystem(
        dataset, GCConfig(cache_capacity=15, window_size=2, method="direct-si")
    )
    system.warm_cache(make_subgraph_queries(dataset, 8, 7, seed=6))
    query = random_connected_subgraph(dataset[0], 5, rng=9)
    report = system.run_query(query, "subgraph")
    return dataset, system, report


class TestQueryJourney:
    def test_steps_in_paper_order(self, demo_run):
        dataset, system, report = demo_run
        journey = QueryJourney(
            report,
            dataset_ids=[g.graph_id for g in dataset],
            cache_entry_ids=[entry.entry_id for entry in system.cache.entries()],
        )
        keys = [step.key for step in journey.steps()]
        assert keys == ["H", "C_M", "S", "S'", "H'", "C", "R", "A"]

    def test_render_text_mentions_speedup(self, demo_run):
        dataset, system, report = demo_run
        journey = QueryJourney(
            report,
            dataset_ids=[g.graph_id for g in dataset],
            cache_entry_ids=[entry.entry_id for entry in system.cache.entries()],
        )
        text = journey.render_text()
        assert "The Query Journey" in text
        assert "sub-iso tests" in text

    def test_step_render_contains_grid(self, demo_run):
        dataset, system, report = demo_run
        journey = QueryJourney(report, [g.graph_id for g in dataset], [])
        step = journey.steps()[1]
        assert "Candidate Set" in step.render()


class TestWorkloadViews:
    @pytest.fixture(scope="class")
    def comparison(self):
        dataset = molecule_dataset(15, min_vertices=8, max_vertices=12, rng=8)
        workload = WorkloadGenerator(dataset, rng=2).generate(10, mix="popular")
        return compare_policies(
            dataset, workload, ["LRU", "HD"], config=GCConfig(cache_capacity=8, window_size=2)
        )

    def test_workload_run_view(self, comparison):
        view = WorkloadRunView(comparison["HD"])
        text = view.render_text()
        assert "The Workload Run" in text
        assert "hit" in text.lower()
        assert view.hit_sparkline() != ""

    def test_policy_speedup_table(self, comparison):
        table = policy_speedup_table(comparison)
        assert "LRU" in table and "HD" in table
        assert "test_speedup" in table

    def test_replacement_comparison(self, comparison):
        universes = {policy: [1, 2, 3] for policy in comparison}
        text = replacement_comparison(comparison, universes)
        assert "LRU" in text and "HD" in text


class TestDeveloperMonitor:
    def test_full_render(self, demo_run):
        _dataset, system, _report = demo_run
        monitor = DeveloperMonitor(system)
        text = monitor.render_text()
        assert "Developer Monitor" in text
        assert "Cache contents" in text
        assert monitor.memory_report()["index_bytes"] >= 0
        assert monitor.aggregate_metrics()["queries"] >= 1
        assert len(monitor.cache_entries()) == len(system.cache.entries())

    def test_cache_disabled(self):
        dataset = molecule_dataset(5, min_vertices=6, max_vertices=8, rng=3)
        system = GraphCacheSystem(dataset, GCConfig(cache_enabled=False))
        monitor = DeveloperMonitor(system)
        assert monitor.cache_entries() == []
        assert "empty or disabled" in monitor.render_cache_table()
        assert "empty or disabled" in monitor.render_utility_chart()

    def test_utility_chart(self, demo_run):
        _dataset, system, _report = demo_run
        assert "e" in DeveloperMonitor(system).render_utility_chart()


class TestSVG:
    def test_render_graph_svg_wellformed(self):
        graph = molecule_graph(8, rng=4)
        svg = render_graph_svg(graph, title="demo molecule")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<circle") == graph.num_vertices
        assert svg.count("<line") == graph.num_edges
        assert "demo molecule" in svg

    def test_circular_layout_variant(self):
        graph = molecule_graph(5, rng=6)
        svg = render_graph_svg(graph, layout="circular")
        assert svg.count("<circle") == 5

    def test_save_graph_svg(self, tmp_path):
        graph = molecule_graph(6, rng=7)
        path = tmp_path / "graph.svg"
        save_graph_svg(graph, path)
        assert path.read_text(encoding="utf-8").startswith("<svg")
