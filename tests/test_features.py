"""Unit tests for the feature extractors (paths, stars, cycles, fingerprints)."""

from __future__ import annotations

import pytest

from repro.errors import IndexError_
from repro.features import (
    CompositeExtractor,
    CycleFeatureExtractor,
    EdgeFeatureExtractor,
    FeatureExtractor,
    Fingerprint,
    PathFeatureExtractor,
    StarFeatureExtractor,
    canonical_cycle_key,
    canonical_path_key,
)
from repro.graph import cycle_graph, path_graph, star_graph


class TestCanonicalKeys:
    def test_path_key_direction_independent(self):
        assert canonical_path_key(["C", "O", "N"]) == canonical_path_key(["N", "O", "C"])

    def test_path_key_prefers_smaller(self):
        assert canonical_path_key(["O", "C"]) == ("C", "O")

    def test_cycle_key_rotation_invariant(self):
        assert canonical_cycle_key(["C", "O", "N"]) == canonical_cycle_key(["O", "N", "C"])

    def test_cycle_key_reflection_invariant(self):
        assert canonical_cycle_key(["C", "O", "N"]) == canonical_cycle_key(["N", "O", "C"])


class TestPathFeatures:
    def test_single_vertices_counted(self):
        graph = path_graph(["C", "O"])
        features = PathFeatureExtractor(max_length=1).extract(graph)
        assert features[("C",)] == 1
        assert features[("O",)] == 1

    def test_edge_feature_counted_once(self):
        graph = path_graph(["C", "O"])
        features = PathFeatureExtractor(max_length=1).extract(graph)
        assert features[("C", "O")] == 1

    def test_path_of_length_two(self):
        graph = path_graph(["C", "O", "N"])
        features = PathFeatureExtractor(max_length=2).extract(graph)
        assert features[("C", "O", "N")] == 1

    def test_max_length_zero_only_vertices(self):
        graph = path_graph(["C", "O", "N"])
        features = PathFeatureExtractor(max_length=0).extract(graph)
        assert all(len(key) == 1 for key in features)

    def test_triangle_path_counts(self):
        graph = cycle_graph(["C", "C", "C"])
        features = PathFeatureExtractor(max_length=2).extract(graph)
        assert features[("C", "C")] == 3           # three edges
        assert features[("C", "C", "C")] == 3      # three length-2 simple paths

    def test_negative_length_rejected(self):
        with pytest.raises(IndexError_):
            PathFeatureExtractor(max_length=-1)

    def test_describe(self):
        assert PathFeatureExtractor(max_length=4).describe()["max_length"] == 4

    def test_edge_extractor_matches_path_length_one(self):
        graph = cycle_graph(["C", "O", "N", "C"])
        assert EdgeFeatureExtractor().extract(graph) == PathFeatureExtractor(1).extract(graph)


class TestStarFeatures:
    def test_counts_center_and_leaves(self):
        graph = star_graph("N", ["C", "C", "O"])
        features = StarFeatureExtractor(max_leaves=2).extract(graph)
        assert features[("S", "N", ())] == 1
        assert features[("S", "N", ("C",))] == 2          # two C leaves
        assert features[("S", "N", ("C", "C"))] == 1
        assert features[("S", "N", ("C", "O"))] == 2

    def test_max_leaves_respected(self):
        graph = star_graph("N", ["C", "C", "O"])
        features = StarFeatureExtractor(max_leaves=1).extract(graph)
        assert all(len(key[2]) <= 1 for key in features)

    def test_invalid_max_leaves(self):
        with pytest.raises(IndexError_):
            StarFeatureExtractor(max_leaves=0)


class TestCycleFeatures:
    def test_triangle_found_once(self):
        graph = cycle_graph(["C", "C", "C"])
        features = CycleFeatureExtractor(max_length=5).extract(graph)
        assert features[("C", canonical_cycle_key(["C", "C", "C"]))] == 1

    def test_square_found_once(self):
        graph = cycle_graph(["C", "O", "C", "O"])
        features = CycleFeatureExtractor(max_length=6).extract(graph)
        assert sum(features.values()) == 1

    def test_path_has_no_cycles(self):
        graph = path_graph(["C", "O", "N", "C"])
        assert not CycleFeatureExtractor().extract(graph)

    def test_max_length_cuts_long_cycles(self):
        graph = cycle_graph(["C"] * 8)
        assert not CycleFeatureExtractor(max_length=6).extract(graph)
        assert CycleFeatureExtractor(max_length=8).extract(graph)

    def test_invalid_max_length(self):
        with pytest.raises(IndexError_):
            CycleFeatureExtractor(max_length=2)


class TestCompositeExtractor:
    def test_namespaced_union(self):
        graph = cycle_graph(["C", "C", "C"])
        composite = CompositeExtractor(
            [PathFeatureExtractor(max_length=1), CycleFeatureExtractor(max_length=5)]
        )
        features = composite.extract(graph)
        assert any(key[0] == "paths" for key in features)
        assert any(key[0] == "cycles" for key in features)

    def test_requires_extractors(self):
        with pytest.raises(ValueError):
            CompositeExtractor([])

    def test_describe_nested(self):
        composite = CompositeExtractor([PathFeatureExtractor(2)])
        assert composite.describe()["extractors"][0]["name"] == "paths"


class TestMultisetHelpers:
    def test_containment(self):
        big = PathFeatureExtractor(2).extract(cycle_graph(["C", "C", "C", "C"]))
        small = PathFeatureExtractor(2).extract(path_graph(["C", "C"]))
        assert FeatureExtractor.multiset_contains(big, small)
        assert not FeatureExtractor.multiset_contains(small, big)

    def test_missing_features(self):
        big = PathFeatureExtractor(1).extract(path_graph(["C", "C"]))
        small = PathFeatureExtractor(1).extract(path_graph(["C", "O"]))
        missing = FeatureExtractor.missing_features(big, small)
        assert ("O",) in missing


class TestFingerprint:
    def test_from_features_and_containment(self):
        big_features = PathFeatureExtractor(2).extract(cycle_graph(["C", "C", "C", "C"]))
        small_features = PathFeatureExtractor(2).extract(path_graph(["C", "C"]))
        big = Fingerprint.from_features(big_features, num_bits=256)
        small = Fingerprint.from_features(small_features, num_bits=256)
        assert big.contains_all(small)

    def test_popcount_and_size(self):
        fingerprint = Fingerprint(num_bits=64)
        fingerprint.add(("C",))
        assert fingerprint.popcount() == 1
        assert fingerprint.size_bytes() == 8

    def test_equality(self):
        first = Fingerprint.from_features([("C",)], num_bits=64)
        second = Fingerprint.from_features([("C",)], num_bits=64)
        assert first == second
        assert hash(first) == hash(second)

    def test_width_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            Fingerprint(64).contains_all(Fingerprint(128))

    def test_invalid_width(self):
        with pytest.raises(IndexError_):
            Fingerprint(num_bits=0)
