"""Tests for the staged query pipeline (repro.runtime.pipeline)."""

from __future__ import annotations

import pytest

from repro.graph import molecule_dataset
from repro.graph.operations import random_connected_subgraph
from repro.methods import DirectSIMethod
from repro.runtime import GCConfig, GraphCacheSystem
from repro.runtime.pipeline import (
    AdmitStage,
    ExecutionContext,
    PipelineStage,
    QueryPipeline,
    default_stages,
)
from tests.conftest import make_subgraph_queries

EXPECTED_ORDER = ["filter", "probe", "prune", "verify", "assemble", "admit"]


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(15, min_vertices=8, max_vertices=14, rng=31)


class TestPipelineShape:
    def test_default_stage_order(self):
        assert QueryPipeline().stage_names() == EXPECTED_ORDER

    def test_executor_uses_default_pipeline(self, dataset):
        system = GraphCacheSystem(dataset, GCConfig(window_size=2, cache_capacity=8))
        assert system.executor.pipeline.stage_names() == EXPECTED_ORDER

    def test_insert_replace_remove(self):
        class NoopStage(PipelineStage):
            name = "noop"

            def run(self, ctx):
                pass

        pipeline = QueryPipeline()
        pipeline.insert_before("verify", NoopStage())
        assert pipeline.stage_names()[3] == "noop"
        pipeline.insert_after("filter", NoopStage())
        assert pipeline.stage_names()[1] == "noop"
        removed = pipeline.remove("noop")
        assert removed.name == "noop"
        replaced = pipeline.replace("admit", NoopStage())
        assert isinstance(replaced, AdmitStage)
        with pytest.raises(KeyError):
            pipeline.remove("no-such-stage")

    def test_stages_are_stateless_singletons(self):
        # one stage list may serve many executors / concurrent queries
        stages = default_stages()
        assert [stage.name for stage in stages] == EXPECTED_ORDER
        for stage in stages:
            assert not vars(stage), f"{stage.name} carries per-query state"


class TestPipelineExecution:
    def test_stage_latencies_recorded(self, dataset):
        system = GraphCacheSystem(dataset, GCConfig(window_size=2, cache_capacity=8))
        report = system.run_query(random_connected_subgraph(dataset[0], 6, rng=2), "subgraph")
        assert list(report.stage_seconds) == EXPECTED_ORDER
        assert all(seconds >= 0.0 for seconds in report.stage_seconds.values())
        # the coarse per-phase timers remain populated for compatibility
        assert report.filter_seconds >= 0.0
        assert report.total_seconds > 0.0

    def test_stage_seconds_flow_into_statistics(self, dataset):
        system = GraphCacheSystem(dataset, GCConfig(window_size=2, cache_capacity=8))
        system.run_queries(make_subgraph_queries(dataset, 5, 6, seed=4))
        breakdown = system.stage_breakdown()
        assert [row["stage"] for row in breakdown] == EXPECTED_ORDER
        shares = [row["share"] for row in breakdown]
        assert abs(sum(shares) - 1.0) < 1e-9
        assert all(row["total_seconds"] >= row["mean_seconds"] >= 0.0 for row in breakdown)

    def test_custom_stage_observes_context(self, dataset):
        seen: list[tuple[int, int]] = []

        class SpyStage(PipelineStage):
            name = "spy"

            def run(self, ctx: ExecutionContext):
                seen.append((len(ctx.report.method_candidates), len(ctx.report.answer)))

        system = GraphCacheSystem(dataset, GCConfig(window_size=2, cache_capacity=8))
        system.executor.pipeline.insert_after("assemble", SpyStage())
        report = system.run_query(random_connected_subgraph(dataset[1], 5, rng=3), "subgraph")
        assert seen and seen[0][0] == len(report.method_candidates)
        assert "spy" in report.stage_seconds

    def test_pipeline_without_cache_stages_matches_method(self, dataset):
        """Dropping probe/prune/admit degrades GC to plain Method M."""
        system = GraphCacheSystem(dataset, GCConfig(window_size=2, cache_capacity=8))
        for name in ("probe", "admit"):
            system.executor.pipeline.remove(name)
        baseline = DirectSIMethod()
        baseline.build(dataset)
        for query in make_subgraph_queries(dataset, 4, 6, seed=6):
            report = system.run_query(query)
            assert report.answer == baseline.execute(query.graph, query.query_type).answer
            assert report.probe_tests == 0
        assert len(system.cache) == 0  # nothing was ever admitted

    def test_deterministic_verification_order(self, dataset):
        """Candidates are verified in stable graph-id order across runs."""
        runs = []
        for _ in range(2):
            system = GraphCacheSystem(dataset, GCConfig(cache_enabled=False))
            report = system.run_query(
                random_connected_subgraph(dataset[2], 5, rng=8), "subgraph"
            )
            runs.append(sorted(report.verified_candidates, key=str))
        assert runs[0] == runs[1]
