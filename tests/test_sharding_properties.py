"""Property-based tests: ShardRouter invariants.

The scatter-gather engine's correctness argument reduces to one routing
property — **every dataset graph is routed to exactly one shard** (the
partitioning is total and disjoint, and no shard is empty) — plus its
dynamic counterpart: **rebalancing onto a different policy is itself total
and disjoint**, and the reported move plan is exactly the set of graphs
whose shard changed.  Hypothesis drives both across random datasets, shard
counts and policies; determinism (same inputs → same assignment) is checked
explicitly because the hash route must not depend on Python's per-process
hash salt.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph import molecule_dataset
from repro.runtime.config import SHARD_POLICIES
from repro.sharding import ShardRouter, stable_graph_id_hash

policies = st.sampled_from(SHARD_POLICIES)


def make_dataset(seed: int, size: int):
    return molecule_dataset(size, min_vertices=4, max_vertices=12, rng=seed)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), size=st.integers(1, 24),
       num_shards=st.integers(1, 8), policy=policies)
def test_routing_is_total_and_disjoint(seed, size, num_shards, policy):
    dataset = make_dataset(seed, size)
    num_shards = min(num_shards, len(dataset))
    router = ShardRouter(dataset, num_shards, policy)

    # total: every graph id assigned, to a valid shard
    assignment = router.assignment()
    assert set(assignment) == {graph.graph_id for graph in dataset}
    assert all(0 <= shard < num_shards for shard in assignment.values())

    # disjoint + covering: partitions are a set partition of the dataset
    partitions = router.partitions()
    assert len(partitions) == num_shards
    seen: set = set()
    for shard, partition in enumerate(partitions):
        ids = {graph.graph_id for graph in partition}
        assert not (ids & seen), "a graph appears in two shards"
        seen |= ids
        assert all(router.shard_of(graph.graph_id) == shard for graph in partition)
    assert seen == set(assignment)

    # no shard is empty (every shard must be able to build a system)
    assert all(partition for partition in partitions)
    assert router.shard_sizes() == [len(partition) for partition in partitions]


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), size=st.integers(2, 24),
       num_shards=st.integers(2, 6),
       before=policies, after=policies)
def test_rebalance_is_total_and_disjoint(seed, size, num_shards, before, after):
    dataset = make_dataset(seed, size)
    num_shards = min(num_shards, len(dataset))
    router = ShardRouter(dataset, num_shards, before)
    old_assignment = router.assignment()

    moves = router.rebalance(after)
    new_assignment = router.assignment()

    # the new assignment is total and disjoint, same universe as the old one
    assert set(new_assignment) == set(old_assignment)
    assert all(0 <= shard < num_shards for shard in new_assignment.values())
    assert all(partition for partition in router.partitions())

    # the move plan is exactly the delta between the two assignments
    expected_moves = {
        graph_id: (old_assignment[graph_id], new_assignment[graph_id])
        for graph_id in old_assignment
        if old_assignment[graph_id] != new_assignment[graph_id]
    }
    assert moves == expected_moves
    # unmoved graphs really did not move
    for graph_id in set(old_assignment) - set(moves):
        assert new_assignment[graph_id] == old_assignment[graph_id]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), size=st.integers(1, 20),
       num_shards=st.integers(1, 6), policy=policies)
def test_routing_is_deterministic(seed, size, num_shards, policy):
    """Two routers over the same inputs agree exactly (no hash salt leaks)."""
    dataset = make_dataset(seed, size)
    num_shards = min(num_shards, len(dataset))
    first = ShardRouter(dataset, num_shards, policy)
    second = ShardRouter(make_dataset(seed, size), num_shards, policy)
    assert first.assignment() == second.assignment()


def test_size_balanced_zero_weight_graphs_leave_no_shard_empty():
    """All-empty graphs tie-break onto one shard; the router must repair."""
    from repro.graph import Graph

    dataset = [Graph(graph_id=i) for i in range(4)]  # zero vertices, zero edges
    router = ShardRouter(dataset, 3, "size-balanced")
    assert all(size >= 1 for size in router.shard_sizes())
    assert sum(router.shard_sizes()) == 4


def test_stable_hash_is_process_independent_reference_values():
    """Pin concrete values: crc32-based routing cannot drift silently."""
    assert stable_graph_id_hash("mol-1") == stable_graph_id_hash("mol-1")
    assert stable_graph_id_hash(7) == stable_graph_id_hash("7")
    rng = random.Random(1)
    ids = [rng.randrange(10**6) for _ in range(100)]
    # spread: 4-way split of 100 random ids leaves no shard empty
    shards = {stable_graph_id_hash(i) % 4 for i in ids}
    assert shards == {0, 1, 2, 3}


class TestRouterValidation:
    def test_rejects_more_shards_than_graphs(self):
        dataset = make_dataset(1, 3)
        with pytest.raises(ConfigurationError):
            ShardRouter(dataset, 4, "hash")

    def test_rejects_unknown_policy(self):
        dataset = make_dataset(1, 4)
        with pytest.raises(ConfigurationError):
            ShardRouter(dataset, 2, "alphabetical")
        router = ShardRouter(dataset, 2, "hash")
        with pytest.raises(ConfigurationError):
            router.rebalance("alphabetical")

    def test_rejects_empty_dataset_and_bad_counts(self):
        with pytest.raises(ConfigurationError):
            ShardRouter([], 1, "hash")
        with pytest.raises(ConfigurationError):
            ShardRouter(make_dataset(1, 2), 0, "hash")

    def test_unknown_graph_id_raises(self):
        router = ShardRouter(make_dataset(1, 4), 2, "hash")
        with pytest.raises(ConfigurationError):
            router.shard_of("not-a-graph")
