"""Integration / property tests for GC's headline correctness guarantee.

The paper: "GC does not produce any false negative or false positive".  We
check it end-to-end: for randomly generated datasets and workloads (with
repeats, shrinks and extensions to force exact/sub/super hits), the answers
produced with the cache enabled equal the answers produced by Method M alone
— for every policy, every Method M, and both query semantics.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import molecule_dataset
from repro.methods import DirectSIMethod
from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import WorkloadGenerator, WorkloadMix


def reference_answers(dataset, workload):
    method = DirectSIMethod()
    method.build(dataset)
    return [method.execute(q.graph, q.query_type).answer for q in workload]


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(15, min_vertices=8, max_vertices=14, rng=301)


@pytest.fixture(scope="module")
def workload(dataset):
    mix = WorkloadMix(repeat_fraction=0.3, shrink_fraction=0.3, extend_fraction=0.3,
                      fresh_fraction=0.1, pool_size=8)
    return WorkloadGenerator(dataset, rng=302).generate(20, mix=mix)


@pytest.fixture(scope="module")
def expected(dataset, workload):
    return reference_answers(dataset, workload)


@pytest.mark.parametrize("policy", ["LRU", "POP", "PIN", "PINC", "HD"])
def test_no_false_results_under_any_policy(dataset, workload, expected, policy):
    config = GCConfig(cache_capacity=10, window_size=2, replacement_policy=policy,
                      method="direct-si")
    system = GraphCacheSystem(dataset, config)
    for query, answer in zip(workload, expected):
        report = system.run_query(query)
        assert report.answer == answer


@pytest.mark.parametrize("method,options", [
    ("direct-si", {}),
    ("graphgrep-sx", {"feature_size": 2}),
    ("grapes", {"feature_size": 2}),
    ("ct-index", {"num_bits": 512}),
])
def test_no_false_results_over_any_method(dataset, workload, expected, method, options):
    config = GCConfig(cache_capacity=10, window_size=2, method=method, method_options=options)
    system = GraphCacheSystem(dataset, config)
    for query, answer in zip(workload, expected):
        report = system.run_query(query)
        assert report.answer == answer


def test_guaranteed_sets_are_really_guaranteed(dataset, workload, expected):
    """S must be a subset of the true answer; S' must not intersect it."""
    system = GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=2,
                                                method="direct-si"))
    for query, answer in zip(workload, expected):
        report = system.run_query(query)
        assert report.guaranteed_answers <= answer
        assert not (report.guaranteed_non_answers & answer)


def test_supergraph_workload_correctness(dataset):
    mix = WorkloadMix(repeat_fraction=0.4, shrink_fraction=0.3, extend_fraction=0.2,
                      fresh_fraction=0.1, pool_size=6, query_type="supergraph",
                      min_pattern_vertices=8, max_pattern_vertices=14)
    workload = WorkloadGenerator(dataset, rng=305).generate(12, mix=mix)
    expected = reference_answers(dataset, workload)
    system = GraphCacheSystem(dataset, GCConfig(cache_capacity=8, window_size=2,
                                                method="direct-si"))
    for query, answer in zip(workload, expected):
        assert system.run_query(query).answer == answer


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(seed=st.integers(0, 10_000))
def test_random_small_universes_no_false_results(seed):
    """Fully randomised end-to-end check on tiny universes (hypothesis)."""
    rng = random.Random(seed)
    dataset = molecule_dataset(8, min_vertices=6, max_vertices=10, rng=rng)
    mix = WorkloadMix(pool_size=4, min_pattern_vertices=3, max_pattern_vertices=7,
                      resize_vertices=2)
    workload = WorkloadGenerator(dataset, rng=rng).generate(8, mix=mix)
    expected = reference_answers(dataset, workload)
    system = GraphCacheSystem(
        dataset,
        GCConfig(cache_capacity=5, window_size=1, method="direct-si",
                 replacement_policy=rng.choice(["LRU", "POP", "PIN", "PINC", "HD"])),
    )
    for query, answer in zip(workload, expected):
        assert system.run_query(query).answer == answer
