"""Differential correctness: sharded ≡ unsharded ≡ direct ≡ served.

The acceptance property of the sharding PR: on a ≥200-query seeded mixed
sub/supergraph workload, the scatter-gather engine at 1, 2 and 4 shards
returns answer sets byte-identical to both the unsharded cached engine and
plain Method M execution — in-process (sequential and concurrent) and
through the HTTP server path.  Where the execution order is deterministic
(one shard, sequential serving) the hit/miss accounting must match exactly
as well, not just the answers.
"""

from __future__ import annotations

import pytest

from repro.graph import molecule_dataset
from repro.workload import generate_trace

from tests.differential import (
    ArmResult,
    assert_answers_equal,
    assert_hit_counts_equal,
    diff_answers,
    run_cached,
    run_direct,
    run_served,
    run_sharded,
)

SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(16, min_vertices=7, max_vertices=13, rng=77)


@pytest.fixture(scope="module")
def workload(dataset):
    trace = generate_trace(dataset, 200, skew="zipfian", query_type="mixed", seed=13)
    assert len(trace) >= 200
    return trace


@pytest.fixture(scope="module")
def direct(dataset, workload):
    return run_direct(dataset, workload)


@pytest.fixture(scope="module")
def cached(dataset, workload):
    return run_cached(dataset, workload)


class TestInProcessEquivalence:
    def test_cached_matches_direct(self, direct, cached):
        assert_answers_equal(direct, cached)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_sharded_matches_direct_and_cached(self, dataset, workload, direct,
                                               cached, num_shards):
        sharded = run_sharded(dataset, workload, num_shards)
        assert_answers_equal(direct, sharded)
        assert_answers_equal(cached, sharded)

    def test_single_shard_hit_accounting_is_identical(self, dataset, workload, cached):
        """sharded(1) is the cached engine plus a trivial merge: every hit,
        miss and sub-iso test count must survive the scatter-gather path."""
        sharded = run_sharded(dataset, workload, num_shards=1)
        assert_hit_counts_equal(cached, sharded)

    @pytest.mark.parametrize("num_shards", (2, 4))
    def test_concurrent_sharded_matches_sequential(self, dataset, workload,
                                                   direct, num_shards):
        """Per-shard worker pools (4 streams/shard) must not change answers."""
        concurrent = run_sharded(dataset, workload, num_shards, concurrent_workers=4)
        assert_answers_equal(direct, concurrent)

    @pytest.mark.parametrize("num_shards", (2, 4))
    def test_sharded_tests_never_exceed_direct(self, dataset, workload, direct,
                                               num_shards):
        """Sharding must not *create* verification work: summed per-shard
        dataset tests stay within the no-cache baseline."""
        sharded = run_sharded(dataset, workload, num_shards)
        assert sharded.aggregate.total_dataset_tests <= direct.aggregate.total_dataset_tests
        # and the candidate universe is conserved across the partitioning
        assert sharded.aggregate.total_baseline_tests == direct.aggregate.total_baseline_tests


class TestServedEquivalence:
    def test_sequential_serving_matches_cached_exactly(self, dataset, workload, cached):
        """One client thread + batch size 1 is fully deterministic: the
        served arm must reproduce answers *and* hit/miss accounting."""
        served = run_served(dataset, workload, num_shards=1,
                            num_threads=1, max_batch_size=1)
        assert_answers_equal(cached, served)
        assert_hit_counts_equal(cached, served)

    @pytest.mark.parametrize("num_shards", (1, 2, 4))
    def test_batched_concurrent_serving_matches_direct(self, dataset, workload,
                                                       direct, num_shards):
        """Answers are invariant under server batching, client concurrency
        and sharding combined — the full production path."""
        served = run_served(dataset, workload, num_shards=num_shards,
                            num_threads=4, max_batch_size=4)
        assert_answers_equal(direct, served)


class TestShardedFacadeConsistency:
    def test_warm_cache_keeps_merged_and_shard_stats_consistent(self, dataset, workload):
        """With reset_statistics=False the merged view and every per-shard
        view must agree on the query count (the /metrics invariant)."""
        from repro.runtime.config import GCConfig
        from repro.sharding import ShardedGraphCacheSystem

        config = GCConfig(cache_capacity=25, window_size=5, num_shards=2)
        warmup = list(workload)[:20]
        with ShardedGraphCacheSystem(dataset, config) as system:
            system.warm_cache(
                [q.graph.copy() for q in warmup], reset_statistics=False
            )
            snapshot = system.statistics.to_dict()
            assert snapshot["num_queries"] == len(warmup)
            assert all(
                shard["num_queries"] == len(warmup)
                for shard in snapshot["shards"].values()
            )
        with ShardedGraphCacheSystem(dataset, config) as system:
            system.warm_cache([q.graph.copy() for q in warmup])  # default reset
            snapshot = system.statistics.to_dict()
            assert snapshot["num_queries"] == 0
            assert all(
                shard["num_queries"] == 0 for shard in snapshot["shards"].values()
            )
            # the caches themselves are warm
            assert all(len(cache) > 0 for cache in system.all_caches())


class TestMismatchDiff:
    def test_equal_arms_produce_no_diff(self):
        left = ArmResult(name="a", answers=[frozenset({1, 2}), frozenset()])
        right = ArmResult(name="b", answers=[frozenset({1, 2}), frozenset()])
        assert diff_answers(left, right) is None

    def test_diff_is_compact_and_names_offenders(self):
        reference = ArmResult(name="ref", answers=[frozenset({1, 2})] * 10)
        other = ArmResult(
            name="bad",
            answers=[frozenset({1, 2})] * 3
            + [frozenset({1}), frozenset({1, 2, 3})]
            + [frozenset({9})] * 5,
        )
        diff = diff_answers(reference, other, limit=3)
        assert diff is not None
        assert "7 of 10 queries" in diff
        assert "query #3" in diff and "missing from bad: [2]" in diff
        assert "query #4" in diff and "unexpected in bad: [3]" in diff
        # compact: only `limit` positions spelled out, the rest summarised
        assert diff.count("query #") == 3
        assert "and 4 more mismatching queries" in diff

    def test_length_mismatch_is_reported(self):
        reference = ArmResult(name="ref", answers=[frozenset({1})] * 3)
        other = ArmResult(name="short", answers=[frozenset({1})] * 2)
        diff = diff_answers(reference, other)
        assert diff is not None and "length mismatch" in diff
