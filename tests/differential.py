"""Differential correctness harness for the sharded scatter-gather engine.

The invariant that makes distribution trustworthy: **every execution arm
returns exactly the same answer sets** for the same workload —

* ``direct``      — Method M alone, no cache (``cache_enabled=False``);
* ``cached``      — the single-system engine with the cache on;
* ``sharded(N)``  — the scatter-gather engine at N shards (full scatter);
* ``sharded(N)+short-circuit`` — the same engine with summary-driven shard
  pruning (``scatter_mode="short-circuit"``);
* ``sharded(N)+process`` — the same engine with every shard hosted in a
  spawned worker process (``shard_backend="process"``, v2 envelopes over
  loopback);
* ``served``      — queries replayed through the HTTP server.

The harness runs each arm on a *fresh* system over the same dataset and the
same seeded workload (queries are cloned per arm, so no arm can leak state
into another), and returns the per-query answer sets plus the hit/test
accounting.  On mismatch, :func:`diff_answers` produces a compact per-query
diff (first few offending positions, missing/unexpected graph ids) instead
of dumping two 200-element lists at the reader.  Short-circuit arms
additionally record every query's scatter plan and the router assignment,
so :func:`diff_short_circuit` can *blame the shard whose pruning was
unsound*: partitions are disjoint, hence each missing answer id maps to
exactly one owning shard, and if that shard was skipped the diff names the
shard and the (wrong) skip reason.

Hit/miss-count equivalence is asserted only where it is actually guaranteed:
``sharded(1)`` is the same engine as ``cached`` plus a trivial merge, and a
*sequential* served run (one client thread, batch size 1) executes the exact
same query stream in the exact same order.  At 2+ shards each shard's cache
admits and evicts independently — and under short-circuit scatter pruned
shards never even see the query — so only the answer sets, not the hit
trajectories, are invariant there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.remote import RemoteGraphService
from repro.cache.statistics import AggregateStatistics
from repro.graph.graph import Graph
from repro.index.base import graph_id_sort_key
from repro.query_model import Query
from repro.runtime.config import GCConfig
from repro.runtime.system import GraphCacheSystem
from repro.server import QueryServer
from repro.sharding import ShardedGraphCacheSystem
from repro.workload import Workload, replay_trace


@dataclass
class ArmResult:
    """One execution arm's observable outcome."""

    name: str
    #: Per-query answer sets, in workload order.
    answers: list[frozenset] = field(default_factory=list)
    #: Aggregate statistics (hits, tests) the arm's StatisticsManager saw.
    aggregate: AggregateStatistics = field(default_factory=AggregateStatistics)
    #: Per-query scatter plans (sharded arms only): targets/skipped/fanout.
    plans: list[dict] | None = None
    #: Graph id → owning shard (sharded arms only), for pruning blame.
    shard_of: dict | None = None
    #: Planner statistics snapshot (sharded arms only).
    scatter_stats: dict | None = None

    @property
    def mean_fanout(self) -> float:
        """Average shards scattered to per query (0.0 for unsharded arms)."""
        if not self.scatter_stats:
            return 0.0
        return self.scatter_stats["mean_fanout"]

    def hit_counts(self) -> dict[str, int]:
        """The hit/test accounting that deterministic arms must agree on."""
        return {
            "queries": self.aggregate.num_queries,
            "hits": self.aggregate.num_hits,
            "exact_hits": self.aggregate.num_exact_hits,
            "sub_hits": self.aggregate.num_sub_hits,
            "super_hits": self.aggregate.num_super_hits,
            "dataset_tests": self.aggregate.total_dataset_tests,
            "baseline_tests": self.aggregate.total_baseline_tests,
            "probe_tests": self.aggregate.total_probe_tests,
        }


def clone_queries(workload: Workload) -> list[Query]:
    """Fresh Query objects (copied graphs, new ids) so arms cannot interact."""
    return [
        Query(graph=query.graph.copy(), query_type=query.query_type)
        for query in workload
    ]


def base_config(**overrides) -> GCConfig:
    """The harness's standard configuration; override per arm."""
    payload = GCConfig(cache_capacity=25, window_size=5).to_dict()
    payload.update(overrides)
    return GCConfig.from_dict(payload)


# ---------------------------------------------------------------------- #
# execution arms
# ---------------------------------------------------------------------- #
def run_direct(dataset: list[Graph], workload: Workload, **config_overrides) -> ArmResult:
    """Method M alone: filter + verify with the cache disabled."""
    config = base_config(cache_enabled=False, **config_overrides)
    with GraphCacheSystem(dataset, config) as system:
        reports = system.run_queries(clone_queries(workload))
        return ArmResult(
            name="direct",
            answers=[frozenset(report.answer) for report in reports],
            aggregate=system.aggregate(),
        )


def run_cached(dataset: list[Graph], workload: Workload, **config_overrides) -> ArmResult:
    """The unsharded single-system engine, cache on."""
    config = base_config(**config_overrides)
    with GraphCacheSystem(dataset, config) as system:
        reports = system.run_queries(clone_queries(workload))
        return ArmResult(
            name="cached",
            answers=[frozenset(report.answer) for report in reports],
            aggregate=system.aggregate(),
        )


def run_sharded(
    dataset: list[Graph],
    workload: Workload,
    num_shards: int,
    concurrent_workers: int | None = None,
    scatter_mode: str = "full",
    shard_backend: str = "thread",
    **config_overrides,
) -> ArmResult:
    """The scatter-gather engine at ``num_shards`` shards.

    ``concurrent_workers`` switches to ``run_queries_concurrent`` with that
    many per-shard streams (None = the deterministic sequential path).
    ``scatter_mode="short-circuit"`` enables summary-driven shard pruning;
    the arm then also records every query's scatter plan, the router
    assignment and the planner statistics, so a mismatch can be blamed on
    the shard whose pruning was unsound (:func:`diff_short_circuit`).
    ``shard_backend="process"`` hosts every shard in a spawned worker
    process behind the v2 envelope transport — the arm that proves breaking
    the GIL changes nothing observable.
    """
    config = base_config(num_shards=num_shards, scatter_mode=scatter_mode,
                         shard_backend=shard_backend, **config_overrides)
    with ShardedGraphCacheSystem(dataset, config) as system:
        queries = clone_queries(workload)
        if concurrent_workers is None:
            reports = system.run_queries(queries)
        else:
            reports = system.run_queries_concurrent(queries, max_workers=concurrent_workers)
        return ArmResult(
            name=f"sharded({num_shards})"
            + (f"+concurrent({concurrent_workers})" if concurrent_workers else "")
            + (f"+{scatter_mode}" if scatter_mode != "full" else "")
            + (f"+{shard_backend}" if shard_backend != "thread" else ""),
            answers=[frozenset(report.answer) for report in reports],
            aggregate=system.aggregate(),
            plans=[query.metadata.get("scatter", {}) for query in queries],
            shard_of=system.router.assignment(),
            scatter_stats=system.planner.stats.to_dict(),
        )


def run_served(
    dataset: list[Graph],
    workload: Workload,
    num_shards: int = 1,
    num_threads: int = 1,
    max_batch_size: int = 1,
    **config_overrides,
) -> ArmResult:
    """Replay the workload through the HTTP server path.

    The default (one client thread, batch size 1) is fully sequential, so
    hit counts are comparable with the in-process ``cached`` arm; larger
    values exercise batching/concurrency, where only answers are invariant.
    The client is a :class:`RemoteGraphService`, so every differential suite
    exercises the negotiated v2 envelope protocol end to end.
    """
    config = base_config(num_shards=num_shards, **config_overrides)
    with QueryServer(
        dataset,
        config,
        max_batch_size=max_batch_size,
        max_queue_depth=max(256, 2 * len(workload)),
    ) as server:
        client = RemoteGraphService.for_server(server)
        result = replay_trace(client, workload, num_threads=num_threads)
        aggregate = server.system.aggregate()
    if result.served != len(workload):
        raise AssertionError(
            f"served arm dropped queries: {result.served}/{len(workload)} served, "
            f"{result.rejected} rejected, {result.errors} errors"
        )
    return ArmResult(
        name=f"served(shards={num_shards},threads={num_threads},batch={max_batch_size})",
        answers=[frozenset(answer) for answer in result.answers()],
        aggregate=aggregate,
    )


# ---------------------------------------------------------------------- #
# comparison / compact diff
# ---------------------------------------------------------------------- #
def diff_answers(
    reference: ArmResult, other: ArmResult, limit: int = 5
) -> str | None:
    """Compact human-readable diff of two arms' answer lists (None = equal)."""
    lines: list[str] = []
    if len(reference.answers) != len(other.answers):
        lines.append(
            f"length mismatch: {reference.name} has {len(reference.answers)} "
            f"answers, {other.name} has {len(other.answers)}"
        )
    mismatches = [
        position
        for position, (left, right) in enumerate(zip(reference.answers, other.answers))
        if left != right
    ]
    for position in mismatches[:limit]:
        left, right = reference.answers[position], other.answers[position]
        missing = sorted(left - right, key=graph_id_sort_key)
        unexpected = sorted(right - left, key=graph_id_sort_key)
        lines.append(
            f"query #{position}: missing from {other.name}: {missing or '-'} | "
            f"unexpected in {other.name}: {unexpected or '-'}"
        )
    if len(mismatches) > limit:
        lines.append(f"... and {len(mismatches) - limit} more mismatching queries")
    if not lines:
        return None
    header = (
        f"{other.name} diverges from {reference.name} "
        f"on {len(mismatches)} of {len(reference.answers)} queries:"
    )
    return "\n".join([header, *lines])


def diff_short_circuit(
    reference: ArmResult, short_circuit: ArmResult, limit: int = 5
) -> str | None:
    """Like :func:`diff_answers`, but *names the unsoundly-pruned shard*.

    ``reference`` is any arm with the full answer sets (direct, cached or
    full scatter); ``short_circuit`` must carry plans and the router
    assignment.  Because partitions are disjoint, every answer id missing
    from the short-circuit arm belongs to exactly one shard; if that shard
    was skipped by the query's plan, the diff reports the shard and the
    recorded (wrong) skip reason — the exact summary screen to debug.
    """
    base = diff_answers(reference, short_circuit, limit=limit)
    if base is None:
        return None
    if short_circuit.plans is None or short_circuit.shard_of is None:
        return base
    blames: list[str] = []
    mismatches = [
        position
        for position, (left, right) in enumerate(
            zip(reference.answers, short_circuit.answers))
        if left != right
    ]
    for position in mismatches[:limit]:
        plan = short_circuit.plans[position] if position < len(short_circuit.plans) else {}
        skipped = {int(shard): reason
                   for shard, reason in plan.get("skipped", {}).items()}
        lost_by_shard: dict[int, list] = {}
        for graph_id in reference.answers[position] - short_circuit.answers[position]:
            owner = short_circuit.shard_of.get(graph_id)
            if owner is not None:
                lost_by_shard.setdefault(owner, []).append(graph_id)
        for owner in sorted(lost_by_shard):
            ids = sorted(lost_by_shard[owner], key=graph_id_sort_key)
            if owner in skipped:
                blames.append(
                    f"query #{position}: shard {owner} was pruned "
                    f"(reason: {skipped[owner]!r}) but owns answers {ids} "
                    "— UNSOUND PRUNING"
                )
            else:
                blames.append(
                    f"query #{position}: shard {owner} was scattered to but "
                    f"dropped answers {ids} — merge/execution bug, not pruning"
                )
    if not blames:
        return base
    return "\n".join([base, "shard blame:", *blames])


def assert_answers_equal(reference: ArmResult, *others: ArmResult) -> None:
    """Assert byte-identical answer sets, failing with the compact diff.

    Arms that carry scatter plans fail with the shard-blaming variant of
    the diff, so an unsound pruning screen is named directly.
    """
    for other in others:
        if other.plans is not None:
            diff = diff_short_circuit(reference, other)
        else:
            diff = diff_answers(reference, other)
        assert diff is None, diff


def assert_hit_counts_equal(reference: ArmResult, *others: ArmResult) -> None:
    """Assert identical hit/test accounting (deterministic arms only)."""
    expected = reference.hit_counts()
    for other in others:
        got = other.hit_counts()
        assert got == expected, (
            f"hit/miss accounting diverges: {reference.name}={expected} "
            f"vs {other.name}={got}"
        )
