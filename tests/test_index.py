"""Tests for the dataset indexes (inverted, suffix trie, fingerprint)."""

from __future__ import annotations

import random

import pytest

from repro.errors import IndexError_
from repro.features import PathFeatureExtractor
from repro.graph import molecule_dataset
from repro.graph.operations import extend_graph, random_connected_subgraph
from repro.index import FingerprintIndex, InvertedFeatureIndex, SuffixTrieIndex
from repro.isomorphism import VF2Matcher
from repro.query_model import QueryType


def make_index(kind: str):
    if kind == "inverted":
        return InvertedFeatureIndex(PathFeatureExtractor(max_length=2))
    if kind == "suffix":
        return SuffixTrieIndex(max_path_length=2)
    return FingerprintIndex(PathFeatureExtractor(max_length=2), num_bits=512)


def true_subgraph_answer(dataset, query):
    matcher = VF2Matcher()
    return {g.graph_id for g in dataset if matcher.is_subgraph(query, g)}


def true_supergraph_answer(dataset, query):
    matcher = VF2Matcher()
    return {g.graph_id for g in dataset if matcher.is_subgraph(g, query)}


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(20, min_vertices=8, max_vertices=16, rng=17)


@pytest.mark.parametrize("kind", ["inverted", "suffix", "fingerprint"])
class TestSoundness:
    def test_subgraph_candidates_contain_answer(self, dataset, kind):
        rng = random.Random(3)
        index = make_index(kind)
        index.build(dataset)
        for _ in range(5):
            source = dataset[rng.randrange(len(dataset))]
            query = random_connected_subgraph(source, 6, rng=rng)
            candidates = index.candidates(query, QueryType.SUBGRAPH)
            answer = true_subgraph_answer(dataset, query)
            assert answer <= candidates
            assert source.graph_id in candidates

    def test_supergraph_candidates_contain_answer(self, dataset, kind):
        rng = random.Random(4)
        index = make_index(kind)
        index.build(dataset)
        labels = sorted({label for g in dataset for label in g.label_set()})
        for _ in range(3):
            source = dataset[rng.randrange(len(dataset))]
            query = extend_graph(source, 4, labels=labels, rng=rng)
            candidates = index.candidates(query, QueryType.SUPERGRAPH)
            answer = true_supergraph_answer(dataset, query)
            assert answer <= candidates
            assert source.graph_id in candidates

    def test_requires_build_before_query(self, dataset, kind):
        index = make_index(kind)
        with pytest.raises(IndexError_):
            index.candidates(dataset[0], QueryType.SUBGRAPH)

    def test_double_build_rejected(self, dataset, kind):
        index = make_index(kind)
        index.build(dataset)
        with pytest.raises(IndexError_):
            index.build(dataset)

    def test_duplicate_graph_ids_rejected(self, dataset, kind):
        index = make_index(kind)
        with pytest.raises(IndexError_):
            index.build([dataset[0], dataset[0]])

    def test_graph_ids_and_memory(self, dataset, kind):
        index = make_index(kind)
        index.build(dataset)
        assert index.graph_ids() == [g.graph_id for g in dataset]
        assert index.memory_bytes() > 0
        assert index.describe()["name"] == index.name

    def test_query_type_accepts_strings(self, dataset, kind):
        index = make_index(kind)
        index.build(dataset)
        query = random_connected_subgraph(dataset[0], 5, rng=9)
        assert index.candidates(query, "subgraph") == index.candidates(
            query, QueryType.SUBGRAPH
        )


class TestInvertedIndexSpecifics:
    def test_filtering_actually_prunes(self, dataset):
        index = InvertedFeatureIndex(PathFeatureExtractor(max_length=3))
        index.build(dataset)
        rng = random.Random(5)
        query = random_connected_subgraph(dataset[3], 8, rng=rng)
        candidates = index.candidates(query, QueryType.SUBGRAPH)
        assert len(candidates) < len(dataset)

    def test_impossible_query_gives_empty_candidates(self, dataset):
        from repro.graph import path_graph

        query = path_graph(["Zz", "Zz"])
        index = InvertedFeatureIndex(PathFeatureExtractor(max_length=2))
        index.build(dataset)
        assert index.candidates(query, QueryType.SUBGRAPH) == set()

    def test_graph_features_lookup(self, dataset):
        index = InvertedFeatureIndex(PathFeatureExtractor(max_length=1))
        index.build(dataset)
        features = index.graph_features(dataset[0].graph_id)
        assert sum(count for key, count in features.items() if len(key) == 1) == dataset[
            0
        ].num_vertices
        with pytest.raises(IndexError_):
            index.graph_features("missing")

    def test_num_features_positive(self, dataset):
        index = InvertedFeatureIndex(PathFeatureExtractor(max_length=2))
        index.build(dataset)
        assert index.num_features() > 0


class TestSuffixTrieSpecifics:
    def test_same_candidates_as_inverted_index(self, dataset):
        trie = SuffixTrieIndex(max_path_length=2)
        inverted = InvertedFeatureIndex(PathFeatureExtractor(max_length=2))
        trie.build(dataset)
        inverted.build(dataset)
        rng = random.Random(6)
        for _ in range(5):
            query = random_connected_subgraph(dataset[rng.randrange(len(dataset))], 6, rng=rng)
            assert trie.candidates(query, QueryType.SUBGRAPH) == inverted.candidates(
                query, QueryType.SUBGRAPH
            )

    def test_trie_shares_prefixes(self, dataset):
        trie = SuffixTrieIndex(max_path_length=2)
        trie.build(dataset)
        inverted = InvertedFeatureIndex(PathFeatureExtractor(max_length=2))
        inverted.build(dataset)
        # a trie cannot have more nodes than 1 + total distinct features
        assert trie.num_trie_nodes() <= 1 + 3 * inverted.num_features()

    def test_invalid_path_length(self):
        with pytest.raises(IndexError_):
            SuffixTrieIndex(max_path_length=0)


class TestFingerprintIndexSpecifics:
    def test_larger_feature_space_weaker_or_equal_filtering(self, dataset):
        # fewer bits => more collisions => never smaller candidate sets
        small = FingerprintIndex(PathFeatureExtractor(2), num_bits=64)
        large = FingerprintIndex(PathFeatureExtractor(2), num_bits=4096)
        small.build(dataset)
        large.build(dataset)
        rng = random.Random(7)
        query = random_connected_subgraph(dataset[1], 7, rng=rng)
        assert large.candidates(query, QueryType.SUBGRAPH) <= small.candidates(
            query, QueryType.SUBGRAPH
        )

    def test_memory_scales_with_bits(self, dataset):
        small = FingerprintIndex(PathFeatureExtractor(2), num_bits=256)
        large = FingerprintIndex(PathFeatureExtractor(2), num_bits=2048)
        small.build(dataset)
        large.build(dataset)
        assert large.memory_bytes() > small.memory_bytes()

    def test_invalid_bits(self):
        with pytest.raises(IndexError_):
            FingerprintIndex(PathFeatureExtractor(2), num_bits=0)
