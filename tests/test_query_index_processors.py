"""Tests for the cached-query index and the sub/super case processors."""

from __future__ import annotations

import random

import pytest

from repro.cache import CacheEntry, CachedQueryIndex, SubCaseProcessor, SuperCaseProcessor
from repro.errors import CacheError
from repro.features import PathFeatureExtractor
from repro.graph import molecule_graph
from repro.graph.operations import extend_graph, random_connected_subgraph
from repro.isomorphism import VF2Matcher
from repro.query_model import QueryType


def entry_for(graph, answer=frozenset()) -> CacheEntry:
    return CacheEntry(graph=graph, query_type=QueryType.SUBGRAPH, answer=frozenset(answer))


@pytest.fixture()
def index() -> CachedQueryIndex:
    return CachedQueryIndex(PathFeatureExtractor(max_length=2))


class TestCachedQueryIndex:
    def test_add_remove_and_len(self, index):
        entry = entry_for(molecule_graph(6, rng=1))
        index.add(entry)
        assert len(index) == 1
        assert entry.entry_id in index
        index.remove(entry.entry_id)
        assert len(index) == 0

    def test_duplicate_add_rejected(self, index):
        entry = entry_for(molecule_graph(6, rng=2))
        index.add(entry)
        with pytest.raises(CacheError):
            index.add(entry)

    def test_remove_missing_rejected(self, index):
        with pytest.raises(CacheError):
            index.remove(424242)

    def test_features_computed_on_add(self, index):
        entry = entry_for(molecule_graph(6, rng=3))
        assert not entry.features
        index.add(entry)
        assert entry.features

    def test_sub_case_screening_keeps_true_container(self, index):
        rng = random.Random(4)
        big = molecule_graph(14, rng=rng)
        cached = entry_for(big)
        index.add(cached)
        query = random_connected_subgraph(big, 6, rng=rng)
        features = index.query_features(query)
        candidates = index.sub_case_candidates(query, features)
        assert cached in candidates

    def test_super_case_screening_keeps_true_contained(self, index):
        rng = random.Random(5)
        small = molecule_graph(7, rng=rng)
        cached = entry_for(small)
        index.add(cached)
        query = extend_graph(small, 4, labels=["C", "N", "O"], rng=rng)
        features = index.query_features(query)
        candidates = index.super_case_candidates(query, features)
        assert cached in candidates

    def test_size_screen_excludes_impossible_directions(self, index):
        small = entry_for(molecule_graph(4, rng=6))
        index.add(small)
        query = molecule_graph(10, rng=7)
        features = index.query_features(query)
        # a 4-vertex cached query cannot contain a 10-vertex query
        assert small not in index.sub_case_candidates(query, features)

    def test_exact_candidates_by_hash(self, index):
        graph = molecule_graph(8, rng=8)
        cached = entry_for(graph)
        index.add(cached)
        permuted = graph.relabel_vertices(
            {vertex: f"x{i}" for i, vertex in enumerate(graph.vertices())}
        )
        assert cached in index.exact_candidates(permuted)
        assert index.exact_candidates(molecule_graph(8, rng=99)) in ([], [cached])

    def test_memory_accounting(self, index):
        index.add(entry_for(molecule_graph(8, rng=9)))
        assert index.memory_bytes() > 0


class TestCaseProcessors:
    def test_sub_case_processor_confirms_real_hits(self):
        rng = random.Random(10)
        big = molecule_graph(14, rng=rng)
        unrelated = molecule_graph(14, rng=999)
        query = random_connected_subgraph(big, 6, rng=rng)
        processor = SubCaseProcessor(VF2Matcher())
        outcome = processor.find_hits(query, [entry_for(big), entry_for(unrelated)])
        hit_graphs = [entry.graph for entry in outcome.hits]
        assert big in hit_graphs
        assert outcome.probe_tests == 2
        assert outcome.probe_seconds >= 0.0

    def test_super_case_processor_confirms_real_hits(self):
        rng = random.Random(11)
        small = molecule_graph(6, rng=rng)
        query = extend_graph(small, 5, labels=["C", "O"], rng=rng)
        processor = SuperCaseProcessor(VF2Matcher())
        outcome = processor.find_hits(query, [entry_for(small)])
        assert len(outcome.hits) == 1

    def test_max_hits_caps_probing(self):
        rng = random.Random(12)
        big = molecule_graph(16, rng=rng)
        query = random_connected_subgraph(big, 5, rng=rng)
        candidates = [entry_for(big) for _ in range(4)]
        processor = SubCaseProcessor(VF2Matcher(), max_hits=2)
        outcome = processor.find_hits(query, candidates)
        assert len(outcome.hits) == 2

    def test_sub_processor_orders_smallest_first(self):
        rng = random.Random(13)
        big = molecule_graph(18, rng=rng)
        medium = random_connected_subgraph(big, 12, rng=rng)
        query = random_connected_subgraph(medium, 5, rng=rng)
        processor = SubCaseProcessor(VF2Matcher(), max_hits=1)
        outcome = processor.find_hits(query, [entry_for(big), entry_for(medium)])
        assert len(outcome.hits) == 1
        assert outcome.hits[0].graph.num_vertices == medium.num_vertices

    def test_no_candidates_no_probes(self):
        processor = SubCaseProcessor(VF2Matcher())
        outcome = processor.find_hits(molecule_graph(5, rng=14), [])
        assert outcome.hits == []
        assert outcome.probe_tests == 0
