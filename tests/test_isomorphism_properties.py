"""Property-based tests for the sub-iso engines (hypothesis).

Two invariants are checked on randomly generated labelled graphs:

1. any connected subgraph extracted from a graph is found by every engine
   (no false negatives on known-positive instances);
2. our from-scratch engines agree with networkx's matcher (an independent
   oracle) on arbitrary query/target pairs.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.graph.operations import random_connected_subgraph
from repro.isomorphism import NetworkXMatcher, UllmannMatcher, VF2Matcher

LABELS = ["A", "B", "C"]


@st.composite
def labelled_graphs(draw, min_vertices=2, max_vertices=9):
    """Random connected labelled graph."""
    num_vertices = draw(st.integers(min_vertices, max_vertices))
    seed = draw(st.integers(0, 2**20))
    rng = random.Random(seed)
    graph = Graph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, rng.choice(LABELS))
    # random spanning tree for connectivity
    order = list(range(num_vertices))
    rng.shuffle(order)
    for index in range(1, num_vertices):
        graph.add_edge(order[index], order[rng.randrange(index)])
    # extra random edges
    extra = draw(st.integers(0, num_vertices))
    for _ in range(extra):
        u, v = rng.randrange(num_vertices), rng.randrange(num_vertices)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(target=labelled_graphs(min_vertices=4, max_vertices=10), data=st.data())
def test_extracted_subgraph_is_always_found(target, data):
    size = data.draw(st.integers(2, target.num_vertices))
    seed = data.draw(st.integers(0, 2**20))
    query = random_connected_subgraph(target, size, rng=seed)
    assert VF2Matcher().is_subgraph(query, target)
    assert UllmannMatcher().is_subgraph(query, target)
    assert NetworkXMatcher().is_subgraph(query, target)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    query=labelled_graphs(min_vertices=2, max_vertices=6),
    target=labelled_graphs(min_vertices=3, max_vertices=9),
)
def test_vf2_agrees_with_networkx(query, target):
    expected = NetworkXMatcher().is_subgraph(query, target)
    assert VF2Matcher().is_subgraph(query, target) == expected


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    query=labelled_graphs(min_vertices=2, max_vertices=5),
    target=labelled_graphs(min_vertices=3, max_vertices=8),
)
def test_ullmann_agrees_with_networkx(query, target):
    expected = NetworkXMatcher().is_subgraph(query, target)
    assert UllmannMatcher().is_subgraph(query, target) == expected


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(target=labelled_graphs(min_vertices=3, max_vertices=8))
def test_returned_mapping_is_a_monomorphism(target):
    query = random_connected_subgraph(target, min(4, target.num_vertices), rng=0)
    result = VF2Matcher().find_embedding(query, target)
    assert result.found
    mapping = result.mapping
    assert len(set(mapping.values())) == query.num_vertices
    for q_vertex, t_vertex in mapping.items():
        assert query.label(q_vertex) == target.label(t_vertex)
    for u, v in query.edges():
        assert target.has_edge(mapping[u], mapping[v])
