"""Tests for cache entries and the cache store."""

from __future__ import annotations

import pytest

from repro.cache import CacheEntry, CacheStore
from repro.errors import CacheError
from repro.graph import molecule_graph, path_graph
from repro.query_model import QueryType


def make_entry(seed: int = 0, answer=frozenset({1, 2})) -> CacheEntry:
    return CacheEntry(
        graph=molecule_graph(6, rng=seed),
        query_type=QueryType.SUBGRAPH,
        answer=frozenset(answer),
    )


class TestCacheEntry:
    def test_entry_ids_unique(self):
        first, second = make_entry(1), make_entry(2)
        assert first.entry_id != second.entry_id

    def test_wl_hash_computed(self):
        entry = make_entry(3)
        assert entry.wl_hash == entry.graph.wl_hash()

    def test_query_type_parsing(self):
        entry = CacheEntry(
            graph=path_graph(["C", "O"]), query_type="supergraph", answer=frozenset()
        )
        assert entry.query_type is QueryType.SUPERGRAPH

    def test_sizes_exposed(self):
        entry = CacheEntry(graph=path_graph(["C", "O"]), query_type="subgraph", answer=frozenset())
        assert entry.num_vertices == 2
        assert entry.num_edges == 1

    def test_memory_accounts_for_answer_size(self):
        small = CacheEntry(
            graph=path_graph(["C", "O"]), query_type="subgraph", answer=frozenset()
        )
        big = CacheEntry(
            graph=path_graph(["C", "O"]),
            query_type="subgraph",
            answer=frozenset(range(1000)),
        )
        assert big.memory_bytes() > small.memory_bytes()

    def test_stats_snapshot(self):
        entry = make_entry(4)
        entry.stats.hit_count = 3
        entry.stats.tests_saved = 10
        snapshot = entry.stats.snapshot()
        assert snapshot["hit_count"] == 3
        assert snapshot["tests_saved"] == 10


class TestCacheStore:
    def test_add_get_remove(self):
        store = CacheStore()
        entry = make_entry(5)
        store.add(entry)
        assert len(store) == 1
        assert store.get(entry.entry_id) is entry
        assert entry.entry_id in store
        removed = store.remove(entry.entry_id)
        assert removed is entry
        assert len(store) == 0

    def test_duplicate_add_rejected(self):
        store = CacheStore()
        entry = make_entry(6)
        store.add(entry)
        with pytest.raises(CacheError):
            store.add(entry)

    def test_missing_get_and_remove_raise(self):
        store = CacheStore()
        with pytest.raises(CacheError):
            store.get(12345)
        with pytest.raises(CacheError):
            store.remove(12345)

    def test_iteration_order_is_insertion_order(self):
        store = CacheStore()
        entries = [make_entry(seed) for seed in range(5)]
        for entry in entries:
            store.add(entry)
        assert store.entries() == entries
        assert store.entry_ids() == [entry.entry_id for entry in entries]
        assert list(store) == entries

    def test_clear_and_memory(self):
        store = CacheStore()
        store.add(make_entry(7))
        assert store.memory_bytes() > 0
        store.clear()
        assert len(store) == 0
        assert store.memory_bytes() == 0
