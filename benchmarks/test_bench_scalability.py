"""E9 (extension) — scalability with dataset size.

The underlying GraphCache evaluation varies dataset characteristics; the demo
paper only quotes the AIDS configuration.  This bench sweeps the dataset size
(with a fixed workload recipe) and regenerates the trend of total sub-iso
tests with and without GC, plus the cache-to-index memory ratio — showing
that GC's savings persist as the dataset grows while its footprint stays
bounded by the cache capacity.
"""

from __future__ import annotations

import pytest

from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import WorkloadGenerator, run_workload

from benchmarks.harness import rows_to_report, standard_dataset

DATASET_SIZES = [25, 50, 100, 200]
NUM_QUERIES = 30


def run_scale(num_graphs: int, cache_enabled: bool):
    dataset = standard_dataset(num_graphs, seed=500 + num_graphs,
                               min_vertices=10, max_vertices=30)
    workload = WorkloadGenerator(dataset, rng=600).generate(NUM_QUERIES, mix="popular")
    config = GCConfig(cache_capacity=20, window_size=5, replacement_policy="HD",
                      method="graphgrep-sx", method_options={"feature_size": 1},
                      cache_enabled=cache_enabled)
    system = GraphCacheSystem(dataset, config)
    result = run_workload(system, workload)
    return system, result


def test_bench_scalability_with_dataset_size(benchmark):
    """Regenerate the dataset-size sweep (tests and memory vs scale)."""
    rows = []
    speedups = {}
    ratios = {}
    for num_graphs in DATASET_SIZES:
        baseline_system, baseline = run_scale(num_graphs, cache_enabled=False)
        gc_system, with_gc = run_scale(num_graphs, cache_enabled=True)
        speedup = (
            baseline.aggregate.total_dataset_tests
            / max(1, with_gc.aggregate.total_dataset_tests)
        )
        ratio = gc_system.memory_overhead_ratio()
        speedups[num_graphs] = speedup
        ratios[num_graphs] = ratio
        rows.append({
            "dataset_graphs": num_graphs,
            "baseline_tests": baseline.aggregate.total_dataset_tests,
            "gc_tests": with_gc.aggregate.total_dataset_tests,
            "test_speedup": round(speedup, 3),
            "hit_ratio": round(with_gc.aggregate.hit_ratio, 3),
            "index_bytes": gc_system.index_memory_bytes(),
            "cache_bytes": gc_system.cache_memory_bytes(),
            "cache_over_index": f"{100 * ratio:.1f}%",
        })
        # correctness at every scale
        for base_report, gc_report in zip(baseline.reports, with_gc.reports):
            assert base_report.answer == gc_report.answer

    table = rows_to_report(
        "E9_scalability",
        "E9: GC savings and memory overhead vs dataset size",
        rows,
        columns=["dataset_graphs", "baseline_tests", "gc_tests", "test_speedup",
                 "hit_ratio", "index_bytes", "cache_bytes", "cache_over_index"],
    )
    print("\n" + table)

    # GC keeps saving tests at every scale
    assert all(speedup >= 1.0 for speedup in speedups.values())
    assert any(speedup > 1.05 for speedup in speedups.values())
    # the cache-to-index memory ratio shrinks as the dataset grows
    assert ratios[DATASET_SIZES[-1]] < ratios[DATASET_SIZES[0]]

    benchmark.pedantic(lambda: run_scale(DATASET_SIZES[0], cache_enabled=True),
                       rounds=1, iterations=1)
