"""S7 — Deadline shedding & hedged scatter: tail latency under overload.

Two arms of the deadline/priority serving work:

* **Deadline shedding** — the same verification-bound zipfian trace is
  replayed open-loop far above server capacity, once without deadlines
  (every query eventually drains the queue, so served tail latency grows
  with the backlog) and once with a per-query deadline and a mixed priority
  population (80% background priority 0, 20% urgent priority 10).  The
  batcher sheds queued work it cannot start in time (504, counted under
  ``timeouts``) and spends every batch slot on the most urgent viable
  query, so the served tail collapses to the deadline bound and the urgent
  band is shed at most as often as the background band.  Answers that *are*
  served stay identical to an unloaded reference replay.

* **Hedged straggler scatter** — a sharded system whose per-shard
  verification occasionally spikes (one call in 64 sleeps ~50ms: a GC
  pause / cold page, deterministic by call count).  With
  ``scatter_hedge="p95"`` and a fixed hedge delay above the normal
  per-shard latency, only spiked shard attempts are hedged; the hedge
  re-runs the sub-batch on a clean call and wins the race, so p95/p99 drop
  from the spike magnitude to roughly (hedge delay + normal service) while
  answer sets stay identical to the unhedged run.

Smoke mode (``run_all.py --smoke`` / ``GC_BENCH_SMOKE=1``) shrinks both
arms for CI perf tracking without changing the scenarios' shape.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api.remote import RemoteGraphService
from repro.graph.graph import Graph
from repro.isomorphism.base import MatchResult, SubgraphMatcher
from repro.isomorphism.vf2 import VF2Matcher
from repro.methods import DirectSIMethod
from repro.query_model import Query
from repro.runtime import GCConfig
from repro.server import QueryServer
from repro.sharding.system import ShardedGraphCacheSystem
from repro.workload import generate_trace, replay_trace

from benchmarks.harness import (
    SimulatedLatencyMatcher,
    rows_to_report,
    smoke_mode,
    smoke_scaled,
    standard_dataset,
    write_json_report,
    write_report,
)

# --- deadline arm --------------------------------------------------------- #
#: Per-test simulated verification latency: high enough that the server is
#: firmly verification-bound and its capacity is far below the offered load.
TEST_LATENCY = 0.0015
DEADLINE_SECONDS = 0.2
PRIORITY_MIX = [(0, 0.8), (10, 0.2)]
OVERLOAD_QPS = 1000.0
OVERLOAD_THREADS = 32

# --- hedge arm ------------------------------------------------------------ #
#: One shard-verification call in SPIKE_PERIOD sleeps SPIKE_SECONDS — a
#: deterministic straggler (GC pause, cold page) the hedge should cover.
SPIKE_PERIOD = 64
SPIKE_SECONDS = 0.05
#: Base per-call latency; a normal shard attempt stays well under the hedge
#: delay, so only spiked attempts are hedged.
BASE_LATENCY = 0.0003
HEDGE_DELAY = 0.012


class SpikingMatcher(SubgraphMatcher):
    """VF2 with a deterministic latency spike every ``SPIKE_PERIOD`` calls."""

    name = "vf2+spikes"

    def __init__(self) -> None:
        self._inner = VF2Matcher()
        self._calls = 0
        self._lock = threading.Lock()

    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        with self._lock:
            spiked = self._calls % SPIKE_PERIOD == 0
            self._calls += 1
        time.sleep(SPIKE_SECONDS if spiked else BASE_LATENCY)
        return self._inner.find_embedding(query, target)


def spiking_method():
    """Per-shard method factory: each shard gets its own spike schedule."""
    return DirectSIMethod(verifier=SpikingMatcher())


@pytest.fixture(scope="module")
def serving_scenario():
    dataset = standard_dataset(smoke_scaled(40, 24), seed=91,
                               min_vertices=10, max_vertices=20)
    trace = generate_trace(dataset, smoke_scaled(144, 48), skew="zipfian",
                           query_type="mixed", seed=29)
    return dataset, trace


def serve_replay(dataset, trace, deadline_seconds=None, priority_mix=None,
                 target_qps=None, num_threads=8):
    """One served replay through a fresh overload-prone server."""
    method = DirectSIMethod(verifier=SimulatedLatencyMatcher(TEST_LATENCY))
    with QueryServer(dataset, GCConfig(cache_capacity=20, window_size=5),
                     method=method, max_batch_size=2,
                     max_delay_seconds=0.004, max_queue_depth=512,
                     request_timeout_seconds=30.0) as server:
        client = RemoteGraphService.for_server(server)
        result = replay_trace(client, trace, target_qps=target_qps,
                              num_threads=num_threads,
                              deadline_seconds=deadline_seconds,
                              priority_mix=priority_mix)
        batcher = server.batcher.stats()
    return result, batcher


def shed_rate(events) -> float:
    events = list(events)
    if not events:
        return 0.0
    return sum(1 for e in events if e.status == 504) / len(events)


def result_row(arm: str, result) -> dict:
    tails = result.latency_percentiles()
    return {
        "arm": arm,
        "served": result.served,
        "timeouts": result.timeouts,
        "rejected": result.rejected,
        "shed_rate": round(shed_rate(result.events), 3),
        "p50_ms": round(tails["p50"] * 1000.0, 2),
        "p95_ms": round(tails["p95"] * 1000.0, 2),
        "p99_ms": round(tails["p99"] * 1000.0, 2),
    }


def test_bench_deadline_shedding(benchmark, serving_scenario):
    """Deadlines bound the served tail under overload; urgency is honoured."""
    dataset, trace = serving_scenario

    # unloaded reference: the answer every served query must still produce
    reference, _ = serve_replay(dataset, trace)
    assert reference.served == len(trace)
    reference_answers = reference.answers()

    # overload, no deadlines: everything eventually drains, the tail grows
    no_deadline, _ = serve_replay(dataset, trace, target_qps=OVERLOAD_QPS,
                                  num_threads=OVERLOAD_THREADS)
    assert no_deadline.errors == 0

    # overload with deadlines + mixed priorities: dead work is shed as 504s
    with_deadline, batcher = serve_replay(
        dataset, trace, deadline_seconds=DEADLINE_SECONDS,
        priority_mix=PRIORITY_MIX, target_qps=OVERLOAD_QPS,
        num_threads=OVERLOAD_THREADS)
    assert with_deadline.errors == 0
    assert with_deadline.timeouts > 0, "overload never triggered shedding"
    assert with_deadline.served > 0, "deadline arm served nothing"
    assert (with_deadline.served + with_deadline.timeouts
            + with_deadline.rejected == len(trace))
    # shed work really died before execution (the zombie-work regression):
    # the batcher counted sheds and holds no outstanding cost afterwards
    assert batcher.shed > 0
    assert batcher.shard_outstanding == {}
    # every answer actually served is the reference answer for that query
    for event in with_deadline.events:
        if event.status == 200:
            assert event.answer == reference_answers[event.index], (
                f"served answer diverged at index {event.index}"
            )

    # the urgent band is shed at most as often as the background band
    high = [e for e in with_deadline.events if e.priority == 10]
    low = [e for e in with_deadline.events if e.priority == 0]
    assert high and low
    assert shed_rate(high) <= shed_rate(low), (
        f"urgent queries shed more often than background ones: "
        f"{shed_rate(high):.3f} vs {shed_rate(low):.3f}"
    )

    rows = [
        result_row("reference (closed loop)", reference),
        result_row("overload, no deadline", no_deadline),
        result_row(f"overload, deadline {DEADLINE_SECONDS}s", with_deadline),
        result_row("  priority 10 (urgent)", _subset(with_deadline, high)),
        result_row("  priority 0 (background)", _subset(with_deadline, low)),
    ]
    table = rows_to_report(
        "S7_deadline_priority",
        "S7: Deadline shedding under overload (open-loop zipfian, 80/20 priority mix)",
        rows,
        columns=["arm", "served", "timeouts", "rejected", "shed_rate",
                 "p50_ms", "p95_ms", "p99_ms"],
    )
    print("\n" + table)

    deadline_tails = with_deadline.latency_percentiles()
    no_deadline_tails = no_deadline.latency_percentiles()
    write_json_report("deadline_priority", {
        "experiment": "S7_deadline_priority",
        "smoke_mode": smoke_mode(),
        "num_queries": len(trace),
        "deadline_seconds": DEADLINE_SECONDS,
        "priority_mix": PRIORITY_MIX,
        "overload_qps": OVERLOAD_QPS,
        "overload_threads": OVERLOAD_THREADS,
        "rows": rows,
        "batcher": batcher.to_dict(),
        "shed_rate_priority_10": round(shed_rate(high), 4),
        "shed_rate_priority_0": round(shed_rate(low), 4),
    })

    # acceptance: the deadline bounds the served tail — p99 within 2x the
    # budget and no worse than the unbounded overload tail
    assert deadline_tails["p99"] <= DEADLINE_SECONDS * 2.0, (
        f"served p99 {deadline_tails['p99']:.3f}s exceeds twice the "
        f"{DEADLINE_SECONDS}s deadline"
    )
    assert deadline_tails["p99"] <= no_deadline_tails["p99"], (
        "deadline arm served a worse p99 than unbounded overload"
    )

    benchmark.pedantic(
        lambda: serve_replay(dataset, trace,
                             deadline_seconds=DEADLINE_SECONDS,
                             priority_mix=PRIORITY_MIX,
                             target_qps=OVERLOAD_QPS,
                             num_threads=OVERLOAD_THREADS),
        rounds=1, iterations=1,
    )


def _subset(result, events):
    """A shallow per-band view reusing ReplayResult's percentile math."""
    import copy

    view = copy.copy(result)
    view.events = list(events)
    return view


def hedge_trace(dataset, length: int):
    return generate_trace(dataset, length, skew="zipfian",
                          query_type="mixed", seed=31)


def run_hedge_arm(dataset, trace, hedged: bool):
    """Sequential per-query timing through a (possibly hedged) sharded system."""
    config = GCConfig(
        cache_capacity=20, window_size=5, num_shards=2,
        scatter_hedge="p95" if hedged else "off",
        hedge_delay_seconds=HEDGE_DELAY if hedged else None,
    )
    latencies, answers = [], []
    with ShardedGraphCacheSystem(dataset, config,
                                 method_factory=spiking_method) as system:
        for query in trace:
            clone = Query(graph=query.graph.copy(), query_type=query.query_type)
            begun = time.perf_counter()
            report = system.run_query(clone)
            latencies.append(time.perf_counter() - begun)
            answers.append(frozenset(report.answer))
        stats = system.hedge_stats()
    return latencies, answers, stats


def tail(latencies, fraction: float) -> float:
    """Nearest-rank percentile of raw latencies."""
    import math

    ordered = sorted(latencies)
    rank = min(len(ordered), max(1, math.ceil(len(ordered) * fraction)))
    return ordered[rank - 1]


def test_bench_hedged_straggler(benchmark):
    """Hedging covers deterministic stragglers without changing answers."""
    dataset = standard_dataset(smoke_scaled(32, 20), seed=45,
                               min_vertices=8, max_vertices=14)
    trace = hedge_trace(dataset, smoke_scaled(60, 24))

    unhedged_lat, unhedged_answers, _ = run_hedge_arm(dataset, trace, hedged=False)
    hedged_lat, hedged_answers, stats = run_hedge_arm(dataset, trace, hedged=True)

    assert hedged_answers == unhedged_answers, "hedging changed answer sets"
    assert stats["hedges_issued"] > 0, "no hedges fired against the spikes"
    assert stats["hedge_wins"] > 0, "no hedge ever beat a spiked primary"
    win_rate = stats["hedge_wins"] / stats["hedges_issued"]

    rows = []
    for arm, lats in (("unhedged", unhedged_lat), ("hedged (p95)", hedged_lat)):
        rows.append({
            "arm": arm,
            "queries": len(lats),
            "mean_ms": round(sum(lats) / len(lats) * 1000.0, 2),
            "p50_ms": round(tail(lats, 0.50) * 1000.0, 2),
            "p95_ms": round(tail(lats, 0.95) * 1000.0, 2),
            "p99_ms": round(tail(lats, 0.99) * 1000.0, 2),
        })
    rows[1]["hedges"] = stats["hedges_issued"]
    rows[1]["win_rate"] = round(win_rate, 3)
    table = rows_to_report(
        "S7_hedged_straggler",
        "S7: Hedged scatter vs deterministic stragglers (2 shards, spiking verifier)",
        rows,
        columns=["arm", "queries", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
                 "hedges", "win_rate"],
    )
    print("\n" + table)

    write_json_report("hedged_straggler", {
        "experiment": "S7_hedged_straggler",
        "smoke_mode": smoke_mode(),
        "num_queries": len(trace),
        "spike_period": SPIKE_PERIOD,
        "spike_seconds": SPIKE_SECONDS,
        "hedge_delay_seconds": HEDGE_DELAY,
        "rows": rows,
        "hedge_stats": stats,
    })
    write_report("S7_hedged_straggler_notes",
                 "S7 notes: hedging win rate",
                 f"hedges issued: {stats['hedges_issued']}\n"
                 f"hedge wins:    {stats['hedge_wins']}\n"
                 f"win rate:      {win_rate:.3f}\n")

    # acceptance: the hedged tail must not regress, and in this deterministic
    # straggler regime it should beat the unhedged p99 outright
    assert tail(hedged_lat, 0.99) <= tail(unhedged_lat, 0.99), (
        f"hedged p99 {tail(hedged_lat, 0.99)*1000:.1f}ms did not improve on "
        f"unhedged {tail(unhedged_lat, 0.99)*1000:.1f}ms"
    )

    benchmark.pedantic(
        lambda: run_hedge_arm(dataset, trace, hedged=True),
        rounds=1, iterations=1,
    )
