"""E7 (ablation) — Method M pluggability.

GC is "applicable for both SI and FTV approaches": the cache must deliver
savings regardless of the Method M it is deployed over.  This bench runs the
same workload over each bundled Method M, with and without GC, and
regenerates a table of dataset sub-iso tests and speedups per method.
"""

from __future__ import annotations

import pytest

from repro.runtime import GCConfig
from repro.workload import compare_methods

from benchmarks.harness import rows_to_report, standard_dataset, standard_workload

METHODS = {
    "direct-si": {},
    "graphgrep-sx": {"feature_size": 2},
    "grapes": {"feature_size": 2},
    "ct-index": {"num_bits": 1024},
}


@pytest.fixture(scope="module")
def comparison():
    dataset = standard_dataset(50, seed=61, min_vertices=10, max_vertices=28)
    workload = standard_workload(dataset, 40, "popular", seed=62, name="methods")
    config = GCConfig(cache_capacity=20, window_size=5, replacement_policy="HD")
    return compare_methods(dataset, workload, list(METHODS), config=config,
                           method_options=METHODS)


def test_bench_method_pluggability(benchmark, comparison):
    """Regenerate the per-method with/without-GC comparison table."""
    rows = []
    for method_name, arms in comparison.items():
        baseline = arms["baseline"].aggregate
        with_gc = arms["gc"].aggregate
        rows.append({
            "method": method_name,
            "baseline_tests": baseline.total_dataset_tests,
            "gc_tests": with_gc.total_dataset_tests,
            "test_speedup": round(
                baseline.total_dataset_tests / max(1, with_gc.total_dataset_tests), 3
            ),
            "gc_hit_ratio": round(with_gc.hit_ratio, 3),
            "index_bytes": arms["baseline"].index_memory_bytes,
            "cache_bytes": arms["gc"].cache_memory_bytes,
        })
    table = rows_to_report(
        "E7_method_pluggability",
        "E7: GC deployed over different Methods M (SI and FTV)",
        rows,
        columns=["method", "baseline_tests", "gc_tests", "test_speedup",
                 "gc_hit_ratio", "index_bytes", "cache_bytes"],
    )
    print("\n" + table)

    for method_name, arms in comparison.items():
        baseline = arms["baseline"]
        with_gc = arms["gc"]
        # GC never increases the number of dataset sub-iso tests
        assert with_gc.aggregate.total_dataset_tests <= baseline.aggregate.total_dataset_tests
        # and never changes an answer
        for base_report, gc_report in zip(baseline.reports, with_gc.reports):
            assert base_report.answer == gc_report.answer
        # GC produced actual savings over at least the SI method
    si_arms = comparison["direct-si"]
    assert (si_arms["gc"].aggregate.total_dataset_tests
            < si_arms["baseline"].aggregate.total_dataset_tests)

    # time a single small comparison for pytest-benchmark accounting
    dataset = standard_dataset(20, seed=63, min_vertices=8, max_vertices=18)
    workload = standard_workload(dataset, 10, "popular", seed=64)
    config = GCConfig(cache_capacity=10, window_size=2)
    benchmark.pedantic(
        lambda: compare_methods(dataset, workload, ["direct-si"], config=config),
        rounds=1, iterations=1,
    )
