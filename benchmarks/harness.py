"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper's evaluation (see
DESIGN.md's experiment index).  The helpers here build the standard datasets
and workloads, format result tables, and write each experiment's report to
``benchmarks/results/<experiment>.txt`` so the regenerated numbers survive the
pytest run (stdout is captured by pytest).
"""

from __future__ import annotations

import functools
import json
import os
import time
from pathlib import Path

from repro.dashboard import format_table
from repro.graph import molecule_dataset
from repro.graph.graph import Graph
from repro.isomorphism.base import MatchResult, SubgraphMatcher
from repro.isomorphism.vf2 import VF2Matcher
from repro.workload import Workload, WorkloadGenerator, WorkloadMix

RESULTS_DIR = Path(__file__).parent / "results"

#: Environment flag (set by ``run_all.py --smoke``) that asks benchmarks to
#: shrink their workloads to CI-friendly sizes while keeping the same shape.
SMOKE_ENV_VAR = "GC_BENCH_SMOKE"

#: Environment overrides (set by ``run_all.py --shards/--scatter``) that pin
#: the shard count and scatter mode of the scatter-aware benchmarks, so CI
#: can exercise the short-circuit configuration end to end.
SHARDS_ENV_VAR = "GC_BENCH_SHARDS"
SCATTER_ENV_VAR = "GC_BENCH_SCATTER"

#: Environment override (set by ``run_all.py --shard-backend``) that pins the
#: shard execution backend (``thread`` or ``process``) of the backend-aware
#: benchmarks, so CI can smoke the multiprocess path end to end.
SHARD_BACKEND_ENV_VAR = "GC_BENCH_SHARD_BACKEND"


def smoke_mode() -> bool:
    """True when the suite runs in smoke mode (CI perf tracking)."""
    return os.environ.get(SMOKE_ENV_VAR, "").strip() not in ("", "0", "false")


def smoke_scaled(full: int, smoke: int) -> int:
    """Pick a benchmark size: ``full`` normally, ``smoke`` in smoke mode."""
    return smoke if smoke_mode() else full


def bench_shards(default: int) -> int:
    """The shard count a scatter-aware benchmark should run at."""
    raw = os.environ.get(SHARDS_ENV_VAR, "").strip()
    return int(raw) if raw else default


def bench_scatter_mode(default: str) -> str:
    """The scatter mode a scatter-aware benchmark should treat as the arm
    under test (``full`` or ``short-circuit``)."""
    raw = os.environ.get(SCATTER_ENV_VAR, "").strip()
    return raw or default


def bench_shard_backend(default: str) -> str:
    """The shard backend (``thread``/``process``) a benchmark should pin."""
    raw = os.environ.get(SHARD_BACKEND_ENV_VAR, "").strip()
    return raw or default


def available_cpus() -> int:
    """CPU cores actually usable by this process (cgroup/affinity aware).

    Process-shard scaling benchmarks record this and only enforce their
    speedup floors when enough cores exist to express the parallelism.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class SimulatedLatencyMatcher(SubgraphMatcher):
    """VF2 plus a fixed per-test latency (verification-bound deployments).

    Models the regime the paper targets — query cost dominated by dataset
    sub-iso verification, as if dataset graphs were disk/network-resident.
    That latency is where a deployment actually waits, and it is what both
    concurrent query streams and server-side batching overlap.
    """

    name = "vf2+latency"

    def __init__(self, latency_seconds: float) -> None:
        self._inner = VF2Matcher()
        self._latency = latency_seconds

    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        time.sleep(self._latency)
        return self._inner.find_embedding(query, target)


def make_latency_direct_method(latency_seconds: float):
    """Build a direct-SI method whose verifier sleeps per test.

    Module-level on purpose: process shard workers receive their method
    factory by pickling, and only module-level callables survive the spawn
    boundary.  Use :func:`latency_method_factory` to bind the latency.
    """
    from repro.methods import DirectSIMethod

    return DirectSIMethod(verifier=SimulatedLatencyMatcher(latency_seconds))


def latency_method_factory(latency_seconds: float):
    """A picklable zero-argument factory for the latency-bound method."""
    return functools.partial(make_latency_direct_method, latency_seconds)


def standard_dataset(num_graphs: int = 100, seed: int = 2018,
                     min_vertices: int = 10, max_vertices: int = 35) -> list[Graph]:
    """The AIDS-like dataset used by most experiments (100 molecule graphs)."""
    return molecule_dataset(num_graphs, min_vertices=min_vertices,
                            max_vertices=max_vertices, rng=seed)


def standard_workload(dataset: list[Graph], num_queries: int, mix: str | WorkloadMix,
                      seed: int = 7, name: str | None = None) -> Workload:
    """A workload over the standard dataset with a named or explicit mix."""
    generator = WorkloadGenerator(dataset, rng=seed)
    return generator.generate(num_queries, mix=mix, name=name)


def write_report(experiment: str, title: str, body: str) -> Path:
    """Write one experiment's regenerated table to benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    content = f"{title}\n{'=' * len(title)}\n\n{body}\n"
    path.write_text(content, encoding="utf-8")
    return path


def rows_to_report(experiment: str, title: str, rows: list[dict], columns=None) -> str:
    """Format rows as a table, write the report file, and return the text."""
    table = format_table(rows, columns=columns)
    write_report(experiment, title, table)
    return table


def write_json_report(experiment: str, payload: dict) -> Path:
    """Write one experiment's machine-readable results.

    Files are named ``BENCH_<experiment>.json`` so tooling (and
    ``benchmarks/run_all.py``) can track the performance trajectory across
    PRs without parsing the human-readable tables.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path
