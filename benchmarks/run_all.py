#!/usr/bin/env python
"""Run the full benchmark suite and emit machine-readable results.

Entry point for performance tracking: runs every ``test_bench_*`` module
under pytest, then collates everything the benchmarks wrote to
``benchmarks/results/`` — both the human-readable ``*.txt`` tables and the
machine-readable ``BENCH_*.json`` files — into a single
``benchmarks/results/BENCH_all.json`` manifest, so the perf trajectory can
be diffed across PRs by tooling.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_all.py            # everything
    PYTHONPATH=src python benchmarks/run_all.py -k concurrent   # a subset
    PYTHONPATH=src python benchmarks/run_all.py --smoke    # CI-sized runs

``--smoke`` sets ``GC_BENCH_SMOKE=1`` for the benchmark processes: modules
that opt in (via :func:`benchmarks.harness.smoke_scaled`) shrink their
workloads to CI-friendly sizes while keeping the same scenario shape, so CI
can track the perf trajectory on every push without multi-minute runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"


def run_benchmarks(extra_args: list[str], smoke: bool = False,
                   shards: int | None = None, scatter: str | None = None,
                   shard_backend: str | None = None) -> int:
    """Run the benchmark pytest modules; returns the pytest exit code."""
    env_path = str(REPO_ROOT / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if smoke:
        env["GC_BENCH_SMOKE"] = "1"
    if shards is not None:
        env["GC_BENCH_SHARDS"] = str(shards)
    if scatter is not None:
        env["GC_BENCH_SCATTER"] = scatter
    if shard_backend is not None:
        env["GC_BENCH_SHARD_BACKEND"] = shard_backend
    command = [sys.executable, "-m", "pytest", str(BENCH_DIR), "-q", *extra_args]
    print("$", " ".join(command), "(smoke mode)" if smoke else "")
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def collate(exit_code: int, smoke: bool = False) -> Path:
    """Gather every result file into one BENCH_all.json manifest."""
    machine_results = {}
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        if path.name == "BENCH_all.json":
            continue
        try:
            machine_results[path.stem] = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            machine_results[path.stem] = {"error": "unreadable JSON"}
    manifest = {
        "exit_code": exit_code,
        "smoke_mode": smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "text_reports": sorted(
            p.name for p in RESULTS_DIR.glob("*.txt")
        ),
        "machine_results": machine_results,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "BENCH_all.json"
    out.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-k", dest="keyword", default=None,
                        help="only run benchmarks matching this pytest -k expression")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized runs: benchmarks shrink their workloads")
    parser.add_argument("--shards", type=int, default=None,
                        help="pin the shard count of the scatter-aware "
                             "benchmarks (GC_BENCH_SHARDS)")
    parser.add_argument("--scatter", choices=["full", "short-circuit"], default=None,
                        help="scatter mode the scatter-aware benchmarks treat "
                             "as the arm under test (GC_BENCH_SCATTER)")
    parser.add_argument("--shard-backend", choices=["thread", "process"],
                        default=None,
                        help="shard execution backend the backend-aware "
                             "benchmarks pin (GC_BENCH_SHARD_BACKEND)")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments passed through to pytest")
    args = parser.parse_args(argv)

    extra = list(args.pytest_args)
    if args.keyword:
        extra += ["-k", args.keyword]
    exit_code = run_benchmarks(extra, smoke=args.smoke,
                               shards=args.shards, scatter=args.scatter,
                               shard_backend=args.shard_backend)
    manifest = collate(exit_code, smoke=args.smoke)
    print(f"wrote {manifest}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
