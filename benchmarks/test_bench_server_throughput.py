"""S1 — Served throughput: QPS and tail latency vs server batch size.

The headline benchmark for the query serving subsystem: the same
verification-bound trace is replayed through the HTTP server by a fixed pool
of closed-loop clients while the server's request batcher coalesces 1, 2, 4
or 8 queries per concurrent engine batch.  Batching overlaps the simulated
per-test verification latency (where a real deployment waits on
disk/network-resident data graphs), so served QPS should scale with batch
size while answers stay bit-identical to batch-size-1 serving.

An open-loop arm replays the trace at a fixed target QPS against a small
admission queue to record how backpressure behaves under overload (429 rate
instead of unbounded queue growth).

Smoke mode (``run_all.py --smoke`` / ``GC_BENCH_SMOKE=1``) shrinks the trace
for CI perf tracking without changing the scenario's shape.
"""

from __future__ import annotations

import pytest

from repro.methods import DirectSIMethod
from repro.runtime import GCConfig
from repro.server import QueryServer
from repro.workload import QueryServerClient, WorkloadGenerator, WorkloadMix, replay_trace

from benchmarks.harness import (
    SimulatedLatencyMatcher,
    rows_to_report,
    smoke_mode,
    smoke_scaled,
    standard_dataset,
    write_json_report,
)

BATCH_SIZES = [1, 2, 4, 8]
CLIENT_THREADS = 8
#: Per-test simulated verification latency.  Higher than C1's 0.35ms so the
#: serving path (which adds HTTP + batching CPU overhead on top) remains
#: firmly verification-bound — the regime batching is designed to exploit.
TEST_LATENCY = 0.0008


@pytest.fixture(scope="module")
def scenario():
    dataset = standard_dataset(smoke_scaled(40, 24), seed=91,
                               min_vertices=10, max_vertices=20)
    # fresh-heavy mix => few cache hits => nearly every candidate is verified
    mix = WorkloadMix(fresh_fraction=0.7, repeat_fraction=0.1,
                      shrink_fraction=0.1, extend_fraction=0.1,
                      min_pattern_vertices=5, max_pattern_vertices=8)
    trace = WorkloadGenerator(dataset, rng=92).generate(
        smoke_scaled(48, 24), mix=mix, name="verification-bound"
    )
    return dataset, trace


def serve_trace(dataset, trace, batch_size: int, max_queue_depth: int = 512,
                target_qps: float | None = None):
    """One served replay; fresh server + system per configuration."""
    method = DirectSIMethod(verifier=SimulatedLatencyMatcher(TEST_LATENCY))
    server = QueryServer(
        dataset,
        GCConfig(cache_capacity=20, window_size=5),
        method=method,
        max_batch_size=batch_size,
        max_delay_seconds=0.004,
        max_queue_depth=max_queue_depth,
        batch_workers=batch_size,
    )
    with server:
        client = QueryServerClient.for_server(server)
        result = replay_trace(client, trace, target_qps=target_qps,
                              num_threads=CLIENT_THREADS)
        batcher = server.batcher.stats()
    return result, batcher


def test_bench_server_throughput(benchmark, scenario):
    """Served QPS at batch size 1/2/4/8; answers identical throughout."""
    dataset, trace = scenario

    rows = []
    reference_answers = None
    baseline_qps = None
    for batch_size in BATCH_SIZES:
        result, batcher = serve_trace(dataset, trace, batch_size)
        assert result.served == len(trace), (
            f"dropped queries at batch={batch_size}: {result.summary()}"
        )
        if reference_answers is None:
            reference_answers = result.answers()
        assert result.answers() == reference_answers, (
            f"answers changed at batch={batch_size}"
        )
        if batch_size == 1:
            baseline_qps = result.achieved_qps
        tails = result.latency_percentiles()
        rows.append({
            "batch_size": batch_size,
            "queries_per_sec": round(result.achieved_qps, 1),
            "elapsed_seconds": round(result.elapsed_seconds, 4),
            "p50_ms": round(tails["p50"] * 1000.0, 2),
            "p95_ms": round(tails["p95"] * 1000.0, 2),
            "p99_ms": round(tails["p99"] * 1000.0, 2),
            "mean_batch": round(batcher.mean_batch_size, 2),
            "speedup_vs_batch_1": round(result.achieved_qps / baseline_qps, 2),
        })

    # overload arm: offered load far above capacity, tiny admission queue —
    # backpressure must reject (429) rather than queue without bound
    overload, _ = serve_trace(dataset, trace, batch_size=2, max_queue_depth=4,
                              target_qps=2000.0)
    overload_row = {
        "served": overload.served,
        "rejected": overload.rejected,
        "errors": overload.errors,
        "rejection_rate": round(overload.rejected / len(trace), 3),
        "achieved_qps": round(overload.achieved_qps, 1),
    }
    assert overload.errors == 0
    assert overload.served + overload.rejected == len(trace)

    table = rows_to_report(
        "S1_server_throughput",
        "S1: Served throughput vs batch size (verification-bound, 8 closed-loop clients)",
        rows,
        columns=["batch_size", "queries_per_sec", "elapsed_seconds",
                 "p50_ms", "p95_ms", "p99_ms", "mean_batch", "speedup_vs_batch_1"],
    )
    write_json_report("server_throughput", {
        "experiment": "S1_server_throughput",
        "smoke_mode": smoke_mode(),
        "num_queries": len(trace),
        "dataset_size": len(dataset),
        "client_threads": CLIENT_THREADS,
        "test_latency_seconds": TEST_LATENCY,
        "rows": rows,
        "overload": overload_row,
    })
    print("\n" + table)

    # acceptance: >=2x served QPS at batch size 4 vs batch size 1
    four = next(row for row in rows if row["batch_size"] == 4)
    assert four["speedup_vs_batch_1"] >= 2.0, (
        f"expected >=2x served QPS at batch=4, got {four['speedup_vs_batch_1']}x"
    )

    benchmark.pedantic(
        lambda: serve_trace(dataset, trace, 4), rounds=1, iterations=1
    )
