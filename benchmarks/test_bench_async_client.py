"""S4 — Async client: connection-count scaling, sync vs async, fixed QPS.

The ROADMAP "async client" claim, measured: a thread-per-connection sync
replay spends one OS thread per connection and tops out around hundreds,
while the asyncio client multiplexes thousands of pooled keep-alive
connections on one event loop.  Both clients replay the same trace against
a fresh 2-shard short-circuit server at the same open-loop target QPS; the
table scans connection counts from the sync client's comfortable range up
to **4× its configured ceiling**, a population only the async client can
hold (the acceptance bar: served QPS reported at ≥ 4× the sync ceiling's
connection count, with zero errors and answers identical across clients).

Smoke mode (``run_all.py --smoke`` / ``GC_BENCH_SMOKE=1``) shrinks the
connection counts and trace by 4× while keeping the 4× ceiling ratio, so CI
tracks the scaling shape on every push.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api.aio import AsyncRemoteGraphService, replay_trace_async
from repro.api.remote import RemoteGraphService
from repro.runtime import GCConfig
from repro.server import QueryServer
from repro.workload import generate_trace, replay_trace

from benchmarks.harness import (
    bench_scatter_mode,
    bench_shards,
    rows_to_report,
    smoke_mode,
    smoke_scaled,
    standard_dataset,
    write_json_report,
)

#: The thread-per-connection client's configured ceiling: beyond a few
#: hundred threads, spawn latency and scheduler pressure dominate (and a
#: thousand is simply not a sane thread count for one replay process).
SYNC_CEILING = smoke_scaled(256, 64)
SYNC_ARMS = [SYNC_CEILING // 4, SYNC_CEILING]
ASYNC_ARMS = [SYNC_CEILING, 4 * SYNC_CEILING]
TARGET_QPS = smoke_scaled(400.0, 200.0)


@pytest.fixture(scope="module")
def scenario():
    dataset = standard_dataset(smoke_scaled(24, 16), seed=51,
                               min_vertices=8, max_vertices=14)
    # one query per connection at the largest arm, so every connection of
    # the 4×-ceiling run actually carries traffic
    trace = generate_trace(dataset, max(ASYNC_ARMS), skew="zipfian",
                           query_type="mixed", seed=52)
    return dataset, trace


def fresh_server(dataset) -> QueryServer:
    config = GCConfig(
        cache_capacity=20, window_size=5,
        num_shards=bench_shards(2), scatter_mode=bench_scatter_mode("short-circuit"),
    )
    return QueryServer(dataset, config, max_batch_size=8, batch_workers=8,
                       max_queue_depth=4096, request_timeout_seconds=120.0)


def sync_arm(dataset, trace, num_threads: int):
    with fresh_server(dataset) as server:
        client = RemoteGraphService.for_server(server, timeout=120.0)
        result = replay_trace(client, trace, target_qps=TARGET_QPS,
                              num_threads=num_threads)
    return result, {"connections": num_threads}


def async_arm(dataset, trace, connections: int):
    with fresh_server(dataset) as server:

        async def go():
            async with AsyncRemoteGraphService.for_server(
                    server, max_connections=connections, timeout=120.0) as client:
                result = await replay_trace_async(
                    client, trace, target_qps=TARGET_QPS,
                    warm_connections=connections,
                )
                return result, client.pool_stats()

        result, pool = asyncio.run(go())
    return result, {"connections": pool["peak_open_connections"], "pool": pool}


def arm_row(client: str, result, meta: dict) -> dict:
    tails = result.latency_percentiles()
    return {
        "client": client,
        "connections": meta["connections"],
        "queries": len(result.events),
        "served": result.served,
        "rejected": result.rejected,
        "errors": result.errors,
        "queries_per_sec": round(result.achieved_qps, 1),
        "p50_ms": round(tails["p50"] * 1000.0, 2),
        "p95_ms": round(tails["p95"] * 1000.0, 2),
        "p99_ms": round(tails["p99"] * 1000.0, 2),
    }


def test_bench_async_client(benchmark, scenario):
    """Connection scaling at fixed target QPS; answers identical throughout."""
    dataset, trace = scenario

    rows = []
    reference_answers = None
    for num_threads in SYNC_ARMS:
        result, meta = sync_arm(dataset, trace, num_threads)
        assert result.errors == 0, f"sync arm errored: {result.summary()}"
        assert result.served == len(trace), f"sync arm dropped: {result.summary()}"
        if reference_answers is None:
            reference_answers = result.answers()
        assert result.answers() == reference_answers, (
            f"answers changed at sync threads={num_threads}")
        rows.append(arm_row("sync", result, meta))

    async_pools = {}
    for connections in ASYNC_ARMS:
        result, meta = async_arm(dataset, trace, connections)
        assert result.errors == 0, f"async arm errored: {result.summary()}"
        assert result.served == len(trace), f"async arm dropped: {result.summary()}"
        assert result.answers() == reference_answers, (
            f"answers changed at async connections={connections}")
        assert meta["connections"] >= connections, (
            f"pool failed to hold {connections} connections: {meta['pool']}")
        async_pools[connections] = meta["pool"]
        rows.append(arm_row("async", result, meta))

    table = rows_to_report(
        "S4_async_client",
        f"S4: Connection scaling sync vs async at {TARGET_QPS:.0f} QPS target "
        f"(2-shard short-circuit serving)",
        rows,
        columns=["client", "connections", "queries", "served", "rejected",
                 "errors", "queries_per_sec", "p50_ms", "p95_ms", "p99_ms"],
    )
    write_json_report("async_client", {
        "experiment": "S4_async_client",
        "smoke_mode": smoke_mode(),
        "target_qps": TARGET_QPS,
        "num_queries": len(trace),
        "dataset_size": len(dataset),
        "num_shards": bench_shards(2),
        "scatter_mode": bench_scatter_mode("short-circuit"),
        "sync_connection_ceiling": SYNC_CEILING,
        "async_connection_peak": max(
            pool["peak_open_connections"] for pool in async_pools.values()),
        "connection_ratio_vs_sync_ceiling": round(
            max(pool["peak_open_connections"] for pool in async_pools.values())
            / SYNC_CEILING, 2),
        "rows": rows,
    })
    print("\n" + table)

    # acceptance: the async client serves the full trace while holding a
    # connection population >= 4x the sync client's configured ceiling
    top = max(ASYNC_ARMS)
    assert top >= 4 * SYNC_CEILING
    top_row = next(row for row in rows
                   if row["client"] == "async" and row["connections"] >= top)
    assert top_row["served"] == len(trace) and top_row["errors"] == 0
    assert top_row["queries_per_sec"] > 0

    benchmark.pedantic(
        lambda: async_arm(dataset, trace, min(ASYNC_ARMS)), rounds=1, iterations=1
    )
