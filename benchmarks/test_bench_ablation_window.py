"""E6 (ablation) — cache capacity and admission-window size.

DESIGN.md calls out two GC design knobs that the demo exposes but does not
sweep: the cache capacity (how many executed queries are retained) and the
window size (how many executed queries are batched before the replacement
policy runs).  This ablation regenerates both sweeps on a fixed workload and
checks the expected monotone-ish shape: more capacity ⇒ at least as many
sub-iso tests saved; very large admission windows delay admission and cannot
beat small windows on a short workload.
"""

from __future__ import annotations

import pytest

from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import run_workload

from benchmarks.harness import rows_to_report, standard_dataset, standard_workload

CAPACITIES = [5, 10, 20, 40]
WINDOW_SIZES = [1, 5, 10, 20]


@pytest.fixture(scope="module")
def setting():
    dataset = standard_dataset(60, seed=88, min_vertices=10, max_vertices=30)
    workload = standard_workload(dataset, 60, "popular", seed=89, name="ablation")
    return dataset, workload


def run_config(dataset, workload, capacity, window_size):
    config = GCConfig(cache_capacity=capacity, window_size=window_size,
                      replacement_policy="HD", method="graphgrep-sx",
                      method_options={"feature_size": 1})
    system = GraphCacheSystem(dataset, config)
    return run_workload(system, workload)


def test_bench_ablation_capacity_and_window(benchmark, setting):
    """Sweep cache capacity and window size; regenerate the ablation table."""
    dataset, workload = setting

    capacity_rows = []
    capacity_speedups = {}
    for capacity in CAPACITIES:
        result = run_config(dataset, workload, capacity, window_size=5)
        capacity_speedups[capacity] = result.aggregate.test_speedup
        capacity_rows.append({
            "sweep": "capacity",
            "value": capacity,
            "hit_ratio": round(result.aggregate.hit_ratio, 3),
            "test_speedup": round(result.aggregate.test_speedup, 3),
            "dataset_tests": result.aggregate.total_dataset_tests,
            "cache_bytes": result.cache_memory_bytes,
        })

    window_rows = []
    window_speedups = {}
    for window in WINDOW_SIZES:
        result = run_config(dataset, workload, capacity=20, window_size=window)
        window_speedups[window] = result.aggregate.test_speedup
        window_rows.append({
            "sweep": "window",
            "value": window,
            "hit_ratio": round(result.aggregate.hit_ratio, 3),
            "test_speedup": round(result.aggregate.test_speedup, 3),
            "dataset_tests": result.aggregate.total_dataset_tests,
            "cache_bytes": result.cache_memory_bytes,
        })

    table = rows_to_report(
        "E6_ablation_window_capacity",
        "E6: ablation — cache capacity and admission-window size",
        capacity_rows + window_rows,
        columns=["sweep", "value", "hit_ratio", "test_speedup", "dataset_tests", "cache_bytes"],
    )
    print("\n" + table)

    # shape: the largest capacity is at least as good as the smallest
    assert capacity_speedups[CAPACITIES[-1]] >= capacity_speedups[CAPACITIES[0]] - 1e-9
    # shape: all configurations still beat the no-cache baseline
    assert all(speedup >= 1.0 for speedup in capacity_speedups.values())
    assert all(speedup >= 1.0 for speedup in window_speedups.values())
    # shape: a small window (prompt admission) beats or matches the largest
    # window (which leaves queries unadmitted for long stretches)
    assert window_speedups[WINDOW_SIZES[0]] >= window_speedups[WINDOW_SIZES[-1]] - 1e-9

    benchmark.pedantic(
        lambda: run_config(dataset, workload, capacity=20, window_size=5),
        rounds=1, iterations=1,
    )
