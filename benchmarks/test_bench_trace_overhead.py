"""S6 — Trace overhead: served QPS vs trace sampling rate.

The observability layer's performance acceptance gate.  The S1 serving
scenario (verification-bound trace, fixed closed-loop client pool, batching
server) is replayed three times with the *only* knob moved being
``trace_sample_rate``: 0.0 (tracing off), 0.1 (typical production sampling)
and 1.0 (every request traced end to end — span tree per query, recorder
inserts, response trace ids).  Answers must stay bit-identical across arms,
and full sampling must keep >= 95% of the tracing-off served QPS — tracing
is bookkeeping around the pipeline, never inside the verification loop.

Each arm runs twice and keeps its best QPS, damping scheduler noise the
same way a single slow CI tick would otherwise fail a 5% bound.

Smoke mode (``run_all.py --smoke`` / ``GC_BENCH_SMOKE=1``) shrinks the trace
for CI perf tracking without changing the scenario's shape.
"""

from __future__ import annotations

import pytest

from repro.methods import DirectSIMethod
from repro.runtime import GCConfig
from repro.server import QueryServer
from repro.workload import QueryServerClient, WorkloadGenerator, WorkloadMix, replay_trace

from benchmarks.harness import (
    SimulatedLatencyMatcher,
    rows_to_report,
    smoke_mode,
    smoke_scaled,
    standard_dataset,
    write_json_report,
)

SAMPLE_RATES = [0.0, 0.1, 1.0]
CLIENT_THREADS = 8
BATCH_SIZE = 4
TEST_LATENCY = 0.0008
#: Served QPS at full sampling must stay within 5% of tracing-off.
MAX_OVERHEAD = 0.05
ROUNDS_PER_ARM = 2


@pytest.fixture(scope="module")
def scenario():
    dataset = standard_dataset(smoke_scaled(40, 24), seed=91,
                               min_vertices=10, max_vertices=20)
    mix = WorkloadMix(fresh_fraction=0.7, repeat_fraction=0.1,
                      shrink_fraction=0.1, extend_fraction=0.1,
                      min_pattern_vertices=5, max_pattern_vertices=8)
    trace = WorkloadGenerator(dataset, rng=92).generate(
        smoke_scaled(48, 24), mix=mix, name="verification-bound"
    )
    return dataset, trace


def serve_traced(dataset, trace, sample_rate: float):
    """One served replay with the given server-side trace sampling rate."""
    method = DirectSIMethod(verifier=SimulatedLatencyMatcher(TEST_LATENCY))
    server = QueryServer(
        dataset,
        GCConfig(cache_capacity=20, window_size=5,
                 trace_sample_rate=sample_rate),
        method=method,
        max_batch_size=BATCH_SIZE,
        max_delay_seconds=0.004,
        max_queue_depth=512,
        batch_workers=BATCH_SIZE,
    )
    with server:
        client = QueryServerClient.for_server(server)
        result = replay_trace(client, trace, num_threads=CLIENT_THREADS)
        traced = server.span_recorder.stats()["traces"]
    return result, traced


def test_bench_trace_overhead(benchmark, scenario):
    """Served QPS at sampling 0.0/0.1/1.0; full sampling costs <= 5%."""
    dataset, trace = scenario

    rows = []
    reference_answers = None
    baseline_qps = None
    for rate in SAMPLE_RATES:
        best = None
        for _ in range(ROUNDS_PER_ARM):
            result, traced = serve_traced(dataset, trace, rate)
            assert result.served == len(trace), (
                f"dropped queries at rate={rate}: {result.summary()}"
            )
            if reference_answers is None:
                reference_answers = result.answers()
            assert result.answers() == reference_answers, (
                f"tracing changed answers at rate={rate}"
            )
            if best is None or result.achieved_qps > best[0].achieved_qps:
                best = (result, traced)
        result, traced = best
        if rate == 0.0:
            baseline_qps = result.achieved_qps
            assert traced == 0, "tracing off must record no traces"
        tails = result.latency_percentiles()
        rows.append({
            "sample_rate": rate,
            "queries_per_sec": round(result.achieved_qps, 1),
            "p50_ms": round(tails["p50"] * 1000.0, 2),
            "p99_ms": round(tails["p99"] * 1000.0, 2),
            "traces_recorded": traced,
            "qps_vs_off": round(result.achieved_qps / baseline_qps, 3),
        })

    table = rows_to_report(
        "S6_trace_overhead",
        "S6: Served QPS vs trace sampling rate (verification-bound, "
        f"batch={BATCH_SIZE}, {CLIENT_THREADS} closed-loop clients)",
        rows,
        columns=["sample_rate", "queries_per_sec", "p50_ms", "p99_ms",
                 "traces_recorded", "qps_vs_off"],
    )
    write_json_report("trace_overhead", {
        "experiment": "S6_trace_overhead",
        "smoke_mode": smoke_mode(),
        "num_queries": len(trace),
        "dataset_size": len(dataset),
        "client_threads": CLIENT_THREADS,
        "batch_size": BATCH_SIZE,
        "test_latency_seconds": TEST_LATENCY,
        "max_overhead": MAX_OVERHEAD,
        "rows": rows,
    })
    print("\n" + table)

    full = next(row for row in rows if row["sample_rate"] == 1.0)
    assert full["traces_recorded"] > 0, "full sampling recorded no traces"
    assert full["qps_vs_off"] >= 1.0 - MAX_OVERHEAD, (
        f"full-sampling trace overhead exceeds {MAX_OVERHEAD:.0%}: "
        f"{full['qps_vs_off']:.3f}x of tracing-off QPS"
    )

    benchmark.pedantic(
        lambda: serve_traced(dataset, trace, 1.0), rounds=1, iterations=1
    )
