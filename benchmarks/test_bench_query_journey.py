"""E3 — The Query Journey (paper §3.2 Scenario I, Fig. 3).

The demo walks one query through GC: a dataset of 100 graphs, a cache with 50
executed queries, Method M producing a candidate set of 75 graphs, cache hits
(one sub case, three super cases) reducing it to 43 — a 1.74× saving in
sub-iso tests for that query.

This bench reproduces the journey end to end on the synthetic AIDS-like
dataset: it warms a cache of 50 queries, runs a related query, regenerates
the eight Fig. 3 quantities (H, H', C_M, S, S', C, R, A) and checks the
paper's qualitative shape — a meaningfully reduced candidate set, a per-query
test speedup comfortably above 1, and an answer identical to Method M's.
"""

from __future__ import annotations

import random

import pytest

from repro.dashboard import QueryJourney
from repro.graph.operations import random_connected_subgraph
from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import WorkloadGenerator, WorkloadMix

from benchmarks.harness import standard_dataset, write_report

DATASET_SIZE = 100
CACHE_SIZE = 50


def build_journey_system():
    """The demo's setup: 100 graphs, a warm cache of 50 executed queries.

    The cache is warmed with 47 "background" queries plus a containment chain
    extracted from one dataset graph: ``p_big ⊇ p_mid ⊇ p_small ⊇ p_tiny``.
    The big, small and tiny patterns are executed (and therefore cached); the
    middle pattern is the journey query, so it is guaranteed to see one
    sub-case hit (``p_big``) and two super-case hits (``p_small``, ``p_tiny``)
    — the same shape as the paper's Fig. 3 example (1 sub + 3 super hits).
    Method M is the plain SI method, so C_M is the whole dataset, mirroring
    the demo's large candidate set (75 of 100).
    """
    rng = random.Random(2018)
    dataset = standard_dataset(DATASET_SIZE, seed=2018, min_vertices=12, max_vertices=40)
    config = GCConfig(
        cache_capacity=CACHE_SIZE,
        window_size=10,
        replacement_policy="HD",
        method="direct-si",
    )
    system = GraphCacheSystem(dataset, config)

    # the containment chain out of the largest dataset graph
    source = max(dataset, key=lambda graph: graph.num_vertices)
    p_big = random_connected_subgraph(source, 12, rng=rng)
    p_mid = random_connected_subgraph(p_big, 9, rng=rng)
    p_small = random_connected_subgraph(p_mid, 6, rng=rng)
    p_tiny = random_connected_subgraph(p_small, 4, rng=rng)

    generator = WorkloadGenerator(dataset, rng=rng)
    mix = WorkloadMix(repeat_fraction=0.2, shrink_fraction=0.35, extend_fraction=0.35,
                      fresh_fraction=0.1, pool_size=25,
                      min_pattern_vertices=6, max_pattern_vertices=12)
    background = generator.generate(CACHE_SIZE - 3, mix=mix, name="warmup")
    warm_queries = list(background) + [p_big, p_small, p_tiny]
    system.warm_cache(warm_queries)
    return dataset, system, p_mid


def test_bench_query_journey(benchmark):
    """Regenerate Fig. 3's quantities for one query over a warm cache."""
    dataset, system, query = build_journey_system()
    assert len(system.cache) == CACHE_SIZE

    report = benchmark.pedantic(
        lambda: system.run_query(query.copy(), "subgraph"), rounds=1, iterations=1
    )

    journey = QueryJourney(
        report,
        dataset_ids=[graph.graph_id for graph in dataset],
        cache_entry_ids=[entry.entry_id for entry in system.cache.entries()],
    )
    lines = [
        f"dataset graphs          : {DATASET_SIZE}",
        f"cached queries          : {CACHE_SIZE}",
        f"sub-case hits (H)       : {len(report.sub_hit_entries)}",
        f"super-case hits (H')    : {len(report.super_hit_entries)}",
        f"Method M candidates C_M : {len(report.method_candidates)}",
        f"guaranteed answers S    : {len(report.guaranteed_answers)}",
        f"guaranteed non-answers S': {len(report.guaranteed_non_answers)}",
        f"GC candidates C         : {len(report.verified_candidates)}",
        f"verified answers R      : {len(report.verified_answers)}",
        f"final answer A          : {len(report.answer)}",
        f"per-query test speedup  : {report.test_speedup:.2f}x "
        f"(paper example: 75 -> 43 = 1.74x)",
        "",
        journey.render_text(columns=20),
    ]
    write_report("E3_query_journey", "E3: The Query Journey (Fig. 3)", "\n".join(lines))
    print("\n" + "\n".join(lines[:11]))

    # shape checks mirroring the paper's example
    assert report.num_hits >= 1, "the journey query must hit the warm cache"
    assert len(report.verified_candidates) < len(report.method_candidates)
    assert report.test_speedup > 1.2
    # A = R ∪ S and the journey sets partition C_M
    assert report.answer == report.verified_answers | report.guaranteed_answers
    assert report.guaranteed_non_answers.isdisjoint(report.answer)
    # correctness against Method M alone
    baseline = system.executor.execute_baseline(query.copy(), "subgraph")
    assert baseline.answer == report.answer
