"""E5 — Headline speedups ("speedups in query time up to 40×", §1/§3.1).

The paper's headline number comes from favourable workloads: many queries
that repeat, shrink or extend previously seen patterns over an expensive
Method M.  We reproduce the *shape* — a distribution of per-query speedups
whose tail is large (exact-match and strongly-pruned queries) and whose mean
is comfortably above 1 — using a measured (not estimated) Method M baseline.

Absolute numbers depend on the verifier and the dataset scale; the assertions
check the qualitative claims only: GC is never wrong, saves a large fraction
of the sub-iso tests, and its best per-query time speedups are an order of
magnitude above 1.
"""

from __future__ import annotations

import pytest

from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import WorkloadGenerator, WorkloadMix, run_workload

from benchmarks.harness import rows_to_report, standard_dataset


@pytest.fixture(scope="module")
def favourable_setting():
    # larger, label-homogeneous-ish molecules make sub-iso verification the
    # dominant cost, which is the regime the paper's headline targets
    dataset = standard_dataset(80, seed=404, min_vertices=20, max_vertices=50)
    generator = WorkloadGenerator(dataset, rng=405)
    mix = WorkloadMix(repeat_fraction=0.35, shrink_fraction=0.3, extend_fraction=0.25,
                      fresh_fraction=0.1, zipf_alpha=1.0, pool_size=15,
                      min_pattern_vertices=8, max_pattern_vertices=16)
    workload = generator.generate(60, mix=mix, name="favourable")
    return dataset, workload


def test_bench_headline_speedup(benchmark, favourable_setting):
    """Regenerate the headline query-time / sub-iso-test speedup summary."""
    dataset, workload = favourable_setting
    config = GCConfig(cache_capacity=40, window_size=5, replacement_policy="HD",
                      method="direct-si", measure_baseline=True)
    system = GraphCacheSystem(dataset, config)

    result = benchmark.pedantic(lambda: run_workload(system, workload), rounds=1, iterations=1)

    per_query_time_speedups = [
        report.baseline_seconds / report.total_seconds
        for report in result.reports
        if report.baseline_seconds and report.total_seconds > 0
    ]
    per_query_test_speedups = [report.test_speedup for report in result.reports
                               if report.baseline_tests > 0 and report.dataset_tests > 0]
    aggregate = result.aggregate

    rows = [
        {
            "metric": "queries",
            "value": aggregate.num_queries,
        },
        {"metric": "hit ratio", "value": round(aggregate.hit_ratio, 3)},
        {"metric": "workload sub-iso-test speedup", "value": round(aggregate.test_speedup, 2)},
        {"metric": "workload query-time speedup", "value": round(aggregate.time_speedup, 2)},
        {
            "metric": "max per-query time speedup",
            "value": round(max(per_query_time_speedups), 2) if per_query_time_speedups else "n/a",
        },
        {
            "metric": "mean per-query time speedup",
            "value": round(
                sum(per_query_time_speedups) / len(per_query_time_speedups), 2
            ) if per_query_time_speedups else "n/a",
        },
        {
            "metric": "queries answered with zero sub-iso tests",
            "value": sum(1 for report in result.reports if report.dataset_tests == 0),
        },
        {
            "metric": "paper reference",
            "value": "query-time speedups up to 40x on 6M queries (cluster scale)",
        },
    ]
    table = rows_to_report("E5_headline_speedup",
                           "E5: headline speedups of GC over Method M", rows,
                           columns=["metric", "value"])
    print("\n" + table)

    # qualitative claims
    assert aggregate.hit_ratio > 0.4
    assert aggregate.test_speedup > 1.5, "GC must save a large fraction of sub-iso tests"
    assert aggregate.time_speedup > 1.0, "GC must be faster than the measured Method M baseline"
    assert max(per_query_time_speedups) > 5.0, (
        "favourable queries (exact/sub hits) should see order-of-magnitude time speedups"
    )
    # correctness: measured baseline answers equal GC answers is already
    # enforced inside the executor's baseline run; spot check a few reports
    for report in result.reports[:5]:
        baseline = system.executor.execute_baseline(report.query.graph, report.query.query_type)
        assert baseline.answer == report.answer
