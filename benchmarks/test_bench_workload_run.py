"""E4 — The Workload Run (paper §3.2 Scenario II, Fig. 2b and 2c).

Reproduces the demo's second scenario: a cache full of 50 previously executed
queries, a workload of 10 new queries, and two observations:

* per-query sub/super cache-hit percentages (hits over cached graphs) — the
  Fig. 2(b) bars;
* after the run, which cached graphs were replaced under each policy — the
  Fig. 2(c) comparison ("different graphs are cached out in different
  caches").
"""

from __future__ import annotations

import pytest

from repro.dashboard import WorkloadRunView, replacement_comparison
from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import WorkloadGenerator, WorkloadMix, run_workload

from benchmarks.harness import standard_dataset, write_report

POLICIES = ["LRU", "POP", "PIN", "PINC", "HD"]
CACHE_SIZE = 50
WORKLOAD_QUERIES = 10


@pytest.fixture(scope="module")
def scenario():
    dataset = standard_dataset(100, seed=31, min_vertices=10, max_vertices=35)
    generator = WorkloadGenerator(dataset, rng=32)
    mix = WorkloadMix(pool_size=30, repeat_fraction=0.3, shrink_fraction=0.3,
                      extend_fraction=0.3, fresh_fraction=0.1,
                      min_pattern_vertices=6, max_pattern_vertices=12)
    pool = generator.build_pattern_pool(mix)
    warmup = generator.generate(CACHE_SIZE, mix=mix, pattern_pool=pool, name="warmup")
    workload = generator.generate(WORKLOAD_QUERIES, mix="popular", name="workload-run")
    return dataset, warmup, workload


def run_one_policy(dataset, warmup, workload, policy):
    config = GCConfig(cache_capacity=CACHE_SIZE, window_size=10, replacement_policy=policy,
                      method="graphgrep-sx", method_options={"feature_size": 1})
    system = GraphCacheSystem(dataset, config)
    system.warm_cache(list(warmup))
    population = [entry.entry_id for entry in system.cache.entries()]
    result = run_workload(system, workload)
    return system, population, result


def test_bench_workload_run(benchmark, scenario):
    """Regenerate Fig. 2(b) hit percentages and Fig. 2(c) eviction sets."""
    dataset, warmup, workload = scenario

    results = {}
    populations = {}
    for policy in POLICIES:
        system, population, result = run_one_policy(dataset, warmup, workload, policy)
        populations[policy] = population
        results[policy] = result
        assert len(population) == CACHE_SIZE, "the cache must start full (50 cached queries)"

    hd_view = WorkloadRunView(results["HD"])
    sections = [
        "Per-query hit percentage (HD policy, hits / cached graphs):",
        hd_view.hit_percentage_chart(),
        "",
        replacement_comparison(results, populations),
    ]
    write_report("E4_workload_run", "E4: The Workload Run (Fig. 2b / 2c)", "\n".join(sections))
    print("\n" + sections[0])
    print(sections[1])

    # Fig. 2(b): at least some queries in the workload produce cache hits
    hd_hits = results["HD"].hit_percentages
    assert len(hd_hits) == WORKLOAD_QUERIES
    assert any(value > 0 for value in hd_hits)

    # Fig. 2(c): replacement happened and at least two policies made
    # different eviction decisions
    eviction_sets = {policy: frozenset(result.evicted_entry_ids)
                     for policy, result in results.items()}
    assert any(eviction_sets.values()), "the full cache must evict to admit new queries"
    assert len(set(eviction_sets.values())) >= 2, (
        "different policies should cache out different graphs"
    )

    # identical answers regardless of policy
    reference = [sorted(report.answer) for report in results["LRU"].reports]
    for policy in POLICIES[1:]:
        assert [sorted(r.answer) for r in results[policy].reports] == reference

    benchmark.pedantic(
        lambda: run_one_policy(dataset, warmup, workload, "HD"), rounds=1, iterations=1
    )
