"""C1 — Concurrent query throughput: queries/sec vs worker count.

The headline benchmark for the pipelined concurrent engine: the same
verification-bound workload is executed with 1, 2, 4 and 8 concurrent query
streams, with synchronous and with asynchronous cache maintenance.

The scenario models the regime the paper targets — query cost dominated by
dataset sub-iso *verification* — by attaching a fixed per-test latency to the
verifier (as if dataset graphs were disk/network-resident, NeedleTail-style).
That latency is where a hardware-speed deployment actually waits, and it is
what concurrent query streams overlap.  A small pure-CPU arm is also
recorded for honesty: pure-Python in-memory verification is GIL-bound and is
not expected to scale with threads.
"""

from __future__ import annotations

import time

import pytest

from repro.methods import DirectSIMethod
from repro.runtime import GCConfig, GraphCacheSystem
from repro.sharding import ShardedGraphCacheSystem
from repro.workload import WorkloadGenerator, WorkloadMix

from benchmarks.harness import (
    SimulatedLatencyMatcher,
    rows_to_report,
    standard_dataset,
    write_json_report,
)

WORKER_COUNTS = [1, 2, 4, 8]
NUM_QUERIES = 36
DATASET_SIZE = 40
#: Simulated per-test verification latency (seconds) — the "hardware" cost of
#: fetching + testing one dataset graph in the verification-bound regime.
TEST_LATENCY = 0.00035


@pytest.fixture(scope="module")
def scenario():
    dataset = standard_dataset(DATASET_SIZE, seed=91, min_vertices=10, max_vertices=20)
    # fresh-heavy mix => few cache hits => nearly every candidate is verified
    mix = WorkloadMix(fresh_fraction=0.7, repeat_fraction=0.1,
                      shrink_fraction=0.1, extend_fraction=0.1,
                      min_pattern_vertices=5, max_pattern_vertices=8)
    workload = WorkloadGenerator(dataset, rng=92).generate(
        NUM_QUERIES, mix=mix, name="verification-bound"
    )
    return dataset, workload


def run_configuration(dataset, workload, workers: int, async_maintenance: bool,
                      latency: float | None = TEST_LATENCY) -> dict:
    """One full workload run; returns throughput and correctness payload."""
    config = GCConfig(cache_capacity=20, window_size=5,
                      max_workers=workers, async_maintenance=async_maintenance)
    verifier = SimulatedLatencyMatcher(latency) if latency else None
    method = DirectSIMethod(verifier=verifier)
    with GraphCacheSystem(dataset, config, method=method) as system:
        queries = [q.graph.copy() for q in workload]
        start = time.perf_counter()
        reports = system.run_queries_concurrent(queries, max_workers=workers)
        elapsed = time.perf_counter() - start
    return {
        "workers": workers,
        "async_maintenance": async_maintenance,
        "elapsed_seconds": elapsed,
        "queries_per_sec": len(reports) / elapsed,
        "answers": [sorted(report.answer, key=str) for report in reports],
    }


def run_process_configuration(dataset, workload, workers: int) -> dict:
    """The pure-CPU workload with ``workers`` process shard workers.

    Per-query scatter fans the verification across worker processes — the
    configuration S5 benchmarks in depth; recorded here beside the thread
    rows so the GIL honesty arm names the escape hatch.
    """
    config = GCConfig(cache_capacity=20, window_size=5,
                      num_shards=workers, shard_backend="process")
    with ShardedGraphCacheSystem(dataset, config) as system:
        queries = [q.graph.copy() for q in workload]
        start = time.perf_counter()
        reports = system.run_queries(queries)
        elapsed = time.perf_counter() - start
    return {
        "workers": workers,
        "elapsed_seconds": elapsed,
        "queries_per_sec": len(reports) / elapsed,
        "answers": [sorted(report.answer, key=str) for report in reports],
    }


def test_bench_concurrent_throughput(benchmark, scenario):
    """Queries/sec at 1/2/4/8 workers, async maintenance off and on."""
    dataset, workload = scenario

    rows = []
    reference_answers = None
    baselines: dict[bool, float] = {}
    for async_maintenance in (False, True):
        for workers in WORKER_COUNTS:
            result = run_configuration(dataset, workload, workers, async_maintenance)
            if reference_answers is None:
                reference_answers = result["answers"]
            assert result["answers"] == reference_answers, (
                f"answers changed at workers={workers} async={async_maintenance}"
            )
            if workers == 1:
                baselines[async_maintenance] = result["queries_per_sec"]
            rows.append({
                "workers": workers,
                "async_maintenance": async_maintenance,
                "queries_per_sec": round(result["queries_per_sec"], 1),
                "elapsed_seconds": round(result["elapsed_seconds"], 4),
                "speedup_vs_1_worker": round(
                    result["queries_per_sec"] / baselines[async_maintenance], 2
                ),
            })

    # the GIL-honesty arm: pure in-memory CPU verification, thread workers
    # vs process shard workers.  Threads cannot scale this (the GIL), which
    # is exactly what S5's process backend exists to fix — both backends are
    # recorded with their own speedup-vs-1 so the comparison is explicit.
    cpu_rows = []
    cpu_baselines: dict[str, float] = {}
    for workers in (1, 4):
        result = run_configuration(dataset, workload, workers, False, latency=None)
        assert result["answers"] == reference_answers
        cpu_baselines.setdefault("thread", result["queries_per_sec"])
        cpu_rows.append({
            "backend": "thread",
            "workers": workers,
            "queries_per_sec": round(result["queries_per_sec"], 1),
            "elapsed_seconds": round(result["elapsed_seconds"], 4),
            "speedup_vs_1_worker": round(
                result["queries_per_sec"] / cpu_baselines["thread"], 2
            ),
        })
    for workers in (1, 4):
        result = run_process_configuration(dataset, workload, workers)
        assert result["answers"] == reference_answers
        cpu_baselines.setdefault("process", result["queries_per_sec"])
        cpu_rows.append({
            "backend": "process",
            "workers": workers,
            "queries_per_sec": round(result["queries_per_sec"], 1),
            "elapsed_seconds": round(result["elapsed_seconds"], 4),
            "speedup_vs_1_worker": round(
                result["queries_per_sec"] / cpu_baselines["process"], 2
            ),
        })

    table = rows_to_report(
        "C1_concurrent_throughput",
        "C1: Concurrent throughput (verification-bound, simulated test latency)",
        rows,
        columns=["workers", "async_maintenance", "queries_per_sec",
                 "elapsed_seconds", "speedup_vs_1_worker"],
    )
    rows_to_report(
        "C1_concurrent_throughput_cpu",
        "C1b: Pure-CPU arm (GIL-bound threads vs process shard workers)",
        cpu_rows,
        columns=["backend", "workers", "queries_per_sec",
                 "elapsed_seconds", "speedup_vs_1_worker"],
    )
    write_json_report("concurrent_throughput", {
        "experiment": "C1_concurrent_throughput",
        "num_queries": NUM_QUERIES,
        "dataset_size": DATASET_SIZE,
        "test_latency_seconds": TEST_LATENCY,
        "rows": rows,
        "cpu_bound_rows": cpu_rows,
    })
    print("\n" + table)

    # acceptance: >1.5x queries/sec at 4 workers vs 1 worker
    for async_maintenance in (False, True):
        four = next(r for r in rows
                    if r["workers"] == 4 and r["async_maintenance"] == async_maintenance)
        assert four["speedup_vs_1_worker"] > 1.5, (
            f"expected >1.5x at 4 workers (async={async_maintenance}), "
            f"got {four['speedup_vs_1_worker']}x"
        )

    benchmark.pedantic(
        lambda: run_configuration(dataset, workload, 4, True), rounds=1, iterations=1
    )
