"""S2 — Sharded serving: QPS and merge overhead at 1, 2 and 4 shards.

The headline benchmark for the scatter-gather subsystem: the same
verification-bound trace is replayed through the HTTP server while the
dataset is partitioned across 1 (single system), 2 and 4 shards.  Each
query's candidate verification splits across the shards and runs
concurrently (sleep-simulated per-test latency, as if data graphs were
disk/network-resident), so per-query latency — and with it served QPS —
should scale with the shard count while answers stay bit-identical to
single-system serving.

Merge overhead is accounted explicitly: the sharded engine books gather +
merge time as its own ``merge`` pipeline stage, which this benchmark reads
back from the server's ``/metrics`` stage breakdown and reports both as
total milliseconds and as a share of summed stage time.

Smoke mode (``run_all.py --smoke`` / ``GC_BENCH_SMOKE=1``) shrinks the trace
for CI perf tracking without changing the scenario's shape.
"""

from __future__ import annotations

import pytest

from repro.methods import DirectSIMethod
from repro.runtime import GCConfig
from repro.server import QueryServer
from repro.sharding import MERGE_STAGE
from repro.workload import QueryServerClient, WorkloadGenerator, WorkloadMix, replay_trace

from benchmarks.harness import (
    SimulatedLatencyMatcher,
    rows_to_report,
    smoke_mode,
    smoke_scaled,
    standard_dataset,
    write_json_report,
)

SHARD_COUNTS = [1, 2, 4]
SHARD_POLICY = "size-balanced"  # keeps per-shard verification work comparable
CLIENT_THREADS = 8
BATCH_SIZE = 4
#: Per-test simulated verification latency.  Higher than S1's 0.8ms so the
#: scenario stays wait-dominated even on small CI machines: scatter-gather
#: overlaps the *waiting* (disk/network-resident data graphs); the CPU part
#: of a test cannot parallelise on a 1-2 core runner.
TEST_LATENCY = 0.0015


@pytest.fixture(scope="module")
def scenario():
    dataset = standard_dataset(smoke_scaled(40, 24), seed=91,
                               min_vertices=10, max_vertices=20)
    # fresh-heavy mix => few cache hits => nearly every candidate is verified
    mix = WorkloadMix(fresh_fraction=0.7, repeat_fraction=0.1,
                      shrink_fraction=0.1, extend_fraction=0.1,
                      min_pattern_vertices=5, max_pattern_vertices=8)
    trace = WorkloadGenerator(dataset, rng=92).generate(
        smoke_scaled(48, 24), mix=mix, name="verification-bound"
    )
    return dataset, trace


def serve_trace(dataset, trace, num_shards: int):
    """One served replay at ``num_shards``; fresh server + system per run."""
    config = GCConfig(cache_capacity=20, window_size=5,
                      num_shards=num_shards, shard_policy=SHARD_POLICY)
    server = QueryServer(
        dataset,
        config,
        # a factory: with shards each partition builds its own Method M
        method=lambda: DirectSIMethod(verifier=SimulatedLatencyMatcher(TEST_LATENCY)),
        max_batch_size=BATCH_SIZE,
        max_delay_seconds=0.004,
        max_queue_depth=512,
        batch_workers=BATCH_SIZE,
    )
    with server:
        client = QueryServerClient.for_server(server)
        result = replay_trace(client, trace, num_threads=CLIENT_THREADS)
        metrics = client.metrics()
    return result, metrics


def merge_overhead(metrics: dict) -> tuple[float, float]:
    """(total merge seconds, merge share of summed stage time) from /metrics."""
    rows = metrics["statistics"]["stage_breakdown"]
    for row in rows:
        if row["stage"] == MERGE_STAGE:
            return row["total_seconds"], row["share"]
    return 0.0, 0.0


def test_bench_shard_scaling(benchmark, scenario):
    """Served QPS at 1/2/4 shards; answers identical; merge cost accounted."""
    dataset, trace = scenario

    rows = []
    reference_answers = None
    baseline_qps = None
    for num_shards in SHARD_COUNTS:
        result, metrics = serve_trace(dataset, trace, num_shards)
        assert result.served == len(trace), (
            f"dropped queries at shards={num_shards}: {result.summary()}"
        )
        if reference_answers is None:
            reference_answers = result.answers()
        assert result.answers() == reference_answers, (
            f"answers changed at shards={num_shards}"
        )
        if num_shards == 1:
            baseline_qps = result.achieved_qps
        merge_seconds, merge_share = merge_overhead(metrics)
        tails = result.latency_percentiles()
        rows.append({
            "num_shards": num_shards,
            "queries_per_sec": round(result.achieved_qps, 1),
            "elapsed_seconds": round(result.elapsed_seconds, 4),
            "p50_ms": round(tails["p50"] * 1000.0, 2),
            "p95_ms": round(tails["p95"] * 1000.0, 2),
            "p99_ms": round(tails["p99"] * 1000.0, 2),
            "merge_ms_total": round(merge_seconds * 1000.0, 3),
            "merge_share_pct": round(merge_share * 100.0, 2),
            "speedup_vs_1_shard": round(result.achieved_qps / baseline_qps, 2),
        })

    table = rows_to_report(
        "S2_shard_scaling",
        "S2: Served throughput vs shard count "
        "(verification-bound, 8 closed-loop clients, batch 4)",
        rows,
        columns=["num_shards", "queries_per_sec", "elapsed_seconds",
                 "p50_ms", "p95_ms", "p99_ms", "merge_ms_total",
                 "merge_share_pct", "speedup_vs_1_shard"],
    )
    write_json_report("shard_scaling", {
        "experiment": "S2_shard_scaling",
        "smoke_mode": smoke_mode(),
        "num_queries": len(trace),
        "dataset_size": len(dataset),
        "client_threads": CLIENT_THREADS,
        "batch_size": BATCH_SIZE,
        "shard_policy": SHARD_POLICY,
        "test_latency_seconds": TEST_LATENCY,
        "rows": rows,
    })
    print("\n" + table)

    # acceptance: scatter-gather actually scales the verification-bound
    # scenario, and the merge stage stays a small fraction of stage time
    four = next(row for row in rows if row["num_shards"] == 4)
    assert four["speedup_vs_1_shard"] >= 1.2, (
        f"expected >=1.2x served QPS at 4 shards, got {four['speedup_vs_1_shard']}x"
    )
    assert four["merge_share_pct"] < 20.0, (
        f"merge overhead unexpectedly dominant: {four['merge_share_pct']}%"
    )

    benchmark.pedantic(
        lambda: serve_trace(dataset, trace, 4), rounds=1, iterations=1
    )
