"""S3 — Short-circuit scatter: fan-out and served QPS on a skewed trace.

The headline benchmark for the scatter planner: a label-clustered dataset
(each cluster draws from a private label alphabet and hash-routes onto its
own shard — the NeedleTail-style locality regime) is served at N shards
while a zipfian-skewed mixed trace is replayed through the HTTP server
twice: once with PR 3's full scatter (every query hits every shard) and
once with ``scatter_mode="short-circuit"`` (the planner consults per-shard
feature/size summaries and skips shards that provably cannot contribute).
A third arm stacks ``admission_mode="cost-based"`` on top, so the number
shows the whole PR 4 serving configuration.

Reported per arm: served QPS (and the delta vs full scatter), p95 latency,
mean scatter fan-out and skip rate from the server's ``/metrics``.  The
acceptance assertions lock the two headline claims: short-circuit answers
stay identical to full scatter, and mean fan-out is *strictly below* the
shard count on the skewed trace (pruning really happened).

``run_all.py --smoke --shards 2 --scatter short-circuit`` (CI) shrinks the
trace and pins the shard count via ``GC_BENCH_SHARDS``/``GC_BENCH_SCATTER``;
locally the benchmark defaults to 4 shards.
"""

from __future__ import annotations

import pytest

from repro.graph import label_clustered_dataset
from repro.methods import DirectSIMethod
from repro.runtime import GCConfig
from repro.server import QueryServer
from repro.workload import QueryServerClient, generate_trace, replay_trace

from benchmarks.harness import (
    SimulatedLatencyMatcher,
    bench_scatter_mode,
    bench_shards,
    rows_to_report,
    smoke_scaled,
    write_json_report,
)

NUM_SHARDS = bench_shards(4)
#: Treatment-arm scatter mode (CI pins it via ``--scatter``); comparing
#: ``full`` against itself still runs but skips the pruning assertions.
TREATMENT_MODE = bench_scatter_mode("short-circuit")
SHARD_POLICY = "hash"  # label_clustered_dataset aligns clusters to hash shards
CLIENT_THREADS = 8
BATCH_SIZE = 4
#: Per-test simulated verification latency (disk/network-resident data
#: graphs); high enough that pruned shards translate into saved wall time.
TEST_LATENCY = 0.0015


@pytest.fixture(scope="module")
def scenario():
    # one label-disjoint cluster per shard: a query built from cluster c's
    # graphs is provably unanswerable on every other shard (label/feature
    # gaps for subgraph semantics, feature floors for supergraph semantics)
    dataset = label_clustered_dataset(
        num_clusters=NUM_SHARDS,
        graphs_per_cluster=smoke_scaled(10, 6),
        rng=181,
    )
    # zipfian skew over the cluster-ordered dataset: cluster 0's graphs are
    # the hot patterns, so shard 0 is the hot shard (the admission scenario)
    trace = generate_trace(dataset, smoke_scaled(64, 32), skew="zipfian",
                           query_type="mixed", seed=182,
                           name="skewed-clustered")
    return dataset, trace


def serve_trace(dataset, trace, scatter_mode: str, admission_mode: str):
    """One served replay; fresh server + sharded system per arm."""
    config = GCConfig(cache_capacity=20, window_size=5,
                      num_shards=NUM_SHARDS, shard_policy=SHARD_POLICY,
                      scatter_mode=scatter_mode, admission_mode=admission_mode)
    server = QueryServer(
        dataset,
        config,
        method=lambda: DirectSIMethod(verifier=SimulatedLatencyMatcher(TEST_LATENCY)),
        max_batch_size=BATCH_SIZE,
        max_delay_seconds=0.004,
        max_queue_depth=512,
        batch_workers=BATCH_SIZE,
        # generous per-shard budget: the cost-based arm demonstrates the
        # accounting (outstanding cost tracked per shard) without 429s, so
        # every arm serves the full trace and answers stay comparable
        max_shard_cost_seconds=60.0,
    )
    with server:
        client = QueryServerClient.for_server(server)
        result = replay_trace(client, trace, num_threads=CLIENT_THREADS)
        metrics = client.metrics()
        stats = client.stats()
    return result, metrics, stats


def test_bench_scatter_shortcircuit(benchmark, scenario):
    """Fan-out < num_shards and the served-QPS delta vs full scatter."""
    dataset, trace = scenario

    arms = [
        ("full", "queue-depth"),
        (TREATMENT_MODE, "queue-depth"),
        (TREATMENT_MODE, "cost-based"),
    ]
    rows = []
    results = {}

    def run_all_arms():
        for scatter_mode, admission_mode in arms:
            results[(scatter_mode, admission_mode)] = serve_trace(
                dataset, trace, scatter_mode, admission_mode
            )

    benchmark.pedantic(run_all_arms, rounds=1, iterations=1)

    full_qps = None
    reference_answers = None
    for scatter_mode, admission_mode in arms:
        result, metrics, server_stats = results[(scatter_mode, admission_mode)]
        assert result.served == len(trace), (
            f"{scatter_mode}/{admission_mode} dropped queries: "
            f"{result.served}/{len(trace)} served, {result.rejected} rejected"
        )
        # answers are the invariant: pruning may only skip shards that
        # cannot contribute, so every arm returns identical answer sets
        answers = result.answers()
        if reference_answers is None:
            reference_answers = answers
        else:
            assert answers == reference_answers, (
                f"{scatter_mode}/{admission_mode} changed answers vs full scatter"
            )
        scatter = metrics["scatter"]
        stats = scatter["stats"]
        tails = result.latency_percentiles()
        if full_qps is None:
            full_qps = result.achieved_qps
        rows.append({
            "scatter": scatter_mode,
            "admission": admission_mode,
            "queries_per_sec": round(result.achieved_qps, 1),
            "speedup_vs_full": round(result.achieved_qps / full_qps, 2),
            "p95_ms": round(tails["p95"] * 1000.0, 2),
            "mean_fanout": stats["mean_fanout"],
            "skip_rate": stats["skip_rate"],
            "summary_fallbacks": stats["summary_fallbacks"],
            "rejected_cost": server_stats["batcher"]["rejected_cost"],
        })

    if TREATMENT_MODE == "short-circuit":
        for row in rows[1:]:
            # the acceptance criterion: real pruning on the skewed trace
            assert 0.0 < row["mean_fanout"] < NUM_SHARDS, (
                f"mean fan-out {row['mean_fanout']} not below {NUM_SHARDS} shards"
            )
            assert row["summary_fallbacks"] == 0

    table = rows_to_report(
        "S3_scatter_shortcircuit",
        f"S3 — Short-circuit scatter at {NUM_SHARDS} shards "
        f"(skewed clustered trace, {len(trace)} queries)",
        rows,
    )
    write_json_report("scatter_shortcircuit", {
        "experiment": "S3_scatter_shortcircuit",
        "num_shards": NUM_SHARDS,
        "shard_policy": SHARD_POLICY,
        "treatment_mode": TREATMENT_MODE,
        "num_queries": len(trace),
        "client_threads": CLIENT_THREADS,
        "batch_size": BATCH_SIZE,
        "test_latency_seconds": TEST_LATENCY,
        "rows": rows,
    })
    print()
    print(table)
