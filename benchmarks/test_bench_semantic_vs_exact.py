"""E8 (ablation) — semantic caching vs the traditional exact-match-only cache.

The paper's central claim about *why* GC differs from existing caches:
"Central to GC is a semantic graph cache that could harness both subgraph
and supergraph cache hits, extending the traditional exact-match-only hit
and hence leading to impressive speedups."

This bench runs the same workload three ways — no cache, an exact-match-only
cache (sub/super cases disabled), and full GC — and regenerates the
comparison of hit ratios and sub-iso-test savings.
"""

from __future__ import annotations

import pytest

from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import run_workload

from benchmarks.harness import rows_to_report, standard_dataset, standard_workload


@pytest.fixture(scope="module")
def setting():
    dataset = standard_dataset(60, seed=111, min_vertices=12, max_vertices=32)
    workload = standard_workload(dataset, 60, "popular", seed=112, name="semantic-vs-exact")
    return dataset, workload


def run_mode(dataset, workload, cache_enabled: bool, semantic: bool):
    config = GCConfig(
        cache_capacity=30,
        window_size=5,
        replacement_policy="HD",
        method="direct-si",
        cache_enabled=cache_enabled,
        enable_sub_case=semantic,
        enable_super_case=semantic,
    )
    system = GraphCacheSystem(dataset, config)
    return run_workload(system, workload)


def test_bench_semantic_vs_exact_only(benchmark, setting):
    """Regenerate the exact-only vs semantic cache comparison."""
    dataset, workload = setting

    no_cache = run_mode(dataset, workload, cache_enabled=False, semantic=False)
    exact_only = run_mode(dataset, workload, cache_enabled=True, semantic=False)
    semantic = run_mode(dataset, workload, cache_enabled=True, semantic=True)

    def row(name, result):
        aggregate = result.aggregate
        return {
            "cache": name,
            "hit_ratio": round(aggregate.hit_ratio, 3),
            "exact_hits": aggregate.num_exact_hits,
            "sub_hits": aggregate.num_sub_hits,
            "super_hits": aggregate.num_super_hits,
            "dataset_tests": aggregate.total_dataset_tests,
            "test_speedup": round(aggregate.test_speedup, 3),
        }

    rows = [
        row("none (Method M only)", no_cache),
        row("exact-match-only", exact_only),
        row("GC (semantic: sub+super)", semantic),
    ]
    table = rows_to_report(
        "E8_semantic_vs_exact",
        "E8: semantic cache (GC) vs traditional exact-match-only cache",
        rows,
        columns=["cache", "hit_ratio", "exact_hits", "sub_hits", "super_hits",
                 "dataset_tests", "test_speedup"],
    )
    print("\n" + table)

    # identical answers in every mode
    for first, second, third in zip(no_cache.reports, exact_only.reports, semantic.reports):
        assert first.answer == second.answer == third.answer

    # shape: exact-only helps (repeats exist), semantic helps strictly more
    assert exact_only.aggregate.total_dataset_tests <= no_cache.aggregate.total_dataset_tests
    assert semantic.aggregate.total_dataset_tests < exact_only.aggregate.total_dataset_tests, (
        "sub/super hits must save tests beyond exact-match hits"
    )
    assert semantic.aggregate.hit_ratio > exact_only.aggregate.hit_ratio
    assert semantic.aggregate.num_sub_hits + semantic.aggregate.num_super_hits > 0
    assert exact_only.aggregate.num_sub_hits == 0
    assert exact_only.aggregate.num_super_hits == 0

    benchmark.pedantic(
        lambda: run_mode(dataset, workload, cache_enabled=True, semantic=True),
        rounds=1, iterations=1,
    )
