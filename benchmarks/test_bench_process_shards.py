"""S5 — Process shard workers: breaking the GIL for CPU-bound verification.

The motivating number for ``shard_backend="process"``: the C1b honesty arm
shows pure-Python in-memory verification does **not** scale with threads —
the GIL serialises it.  This experiment runs the same CPU-bound workload
through the scatter-gather engine with shards hosted (a) in-process on
threads and (b) in spawned worker processes, at increasing shard counts.
Each worker process owns its own interpreter, so per-query scatter fans the
verification work out across real cores.

Two arms:

* **cpu** — pure VF2 verification, no simulated latency.  This is the arm
  the GIL actually throttles; its speedup floor (≥2.5× at 4 process shards
  vs 1) is only enforced when the host exposes ≥4 usable cores — the rows
  (and ``available_cpus``) are recorded honestly either way, a 1-core CI
  runner simply cannot express core-level parallelism.
* **overlap** — simulated per-test latency (verification-bound regime, as
  in C1).  Sleeping releases the GIL *and* the worker's core, so the fan-out
  speedup shows through the process transport on any host; its ≥2.5× floor
  is enforced unconditionally, proving the envelope-over-loopback transport
  is not the bottleneck.

Every configuration's answer sets are asserted identical to direct
execution before any throughput number is reported.
"""

from __future__ import annotations

import time

import pytest

from repro.runtime import GCConfig, GraphCacheSystem
from repro.sharding import ShardedGraphCacheSystem
from repro.workload import WorkloadGenerator, WorkloadMix

from benchmarks.harness import (
    available_cpus,
    bench_shard_backend,
    bench_shards,
    latency_method_factory,
    rows_to_report,
    smoke_scaled,
    standard_dataset,
    write_json_report,
)

DATASET_SIZE = 40
#: Simulated per-test latency for the overlap arm (seconds).  Large enough
#: that sleeping dominates the residual single-core CPU work, so the fan-out
#: speedup shows through the transport even on a 1-core host.
TEST_LATENCY = 0.0025
#: Acceptance floor: queries/sec at 4 process shards vs 1.
SPEEDUP_FLOOR = 2.5


@pytest.fixture(scope="module")
def scenario():
    num_queries = smoke_scaled(24, 8)
    dataset = standard_dataset(DATASET_SIZE, seed=181,
                               min_vertices=12, max_vertices=22)
    # fresh-heavy mix => few cache hits => nearly every candidate is verified,
    # which is exactly the work sharding is supposed to parallelise
    mix = WorkloadMix(fresh_fraction=0.7, repeat_fraction=0.1,
                      shrink_fraction=0.1, extend_fraction=0.1,
                      min_pattern_vertices=6, max_pattern_vertices=9)
    workload = WorkloadGenerator(dataset, rng=182).generate(
        num_queries, mix=mix, name="cpu-bound-scatter"
    )
    return dataset, workload


def reference_answers(dataset, workload):
    with GraphCacheSystem(dataset, GCConfig(cache_enabled=False)) as system:
        reports = system.run_queries([q.graph.copy() for q in workload])
    return [sorted(report.answer, key=str) for report in reports]


def run_configuration(dataset, workload, backend: str, shards: int,
                      method_factory=None) -> dict:
    """One timed workload run through the sharded engine; answers ride along."""
    config = GCConfig(cache_capacity=20, window_size=5,
                      num_shards=shards, shard_backend=backend)
    with ShardedGraphCacheSystem(dataset, config,
                                 method_factory=method_factory) as system:
        queries = [q.graph.copy() for q in workload]
        start = time.perf_counter()
        reports = system.run_queries(queries)
        elapsed = time.perf_counter() - start
    return {
        "backend": backend,
        "shards": shards,
        "elapsed_seconds": elapsed,
        "queries_per_sec": len(reports) / elapsed,
        "answers": [sorted(report.answer, key=str) for report in reports],
    }


def test_bench_process_shards(benchmark, scenario):
    """Queries/sec: thread vs process shard hosting on CPU-bound work."""
    dataset, workload = scenario
    expected = reference_answers(dataset, workload)
    cpus = available_cpus()
    backend_under_test = bench_shard_backend("process")
    # CI smoke pins this to 2 (fewer workers, faster run); the speedup
    # floors below only apply at the full 4-shard fan-out
    top_shards = bench_shards(4)

    # ---- cpu arm: pure VF2, the work the GIL serialises ---------------- #
    cpu_rows = []
    baselines: dict[str, float] = {}
    configurations = [("thread", 1), ("thread", top_shards)]
    configurations += [("process", shards)
                       for shards in (1, 2, 4) if shards <= top_shards]
    for backend, shards in configurations:
        result = run_configuration(dataset, workload, backend, shards)
        assert result["answers"] == expected, (
            f"answers changed at backend={backend} shards={shards}"
        )
        baselines.setdefault(backend, result["queries_per_sec"])
        cpu_rows.append({
            "backend": backend,
            "shards": shards,
            "queries_per_sec": round(result["queries_per_sec"], 2),
            "elapsed_seconds": round(result["elapsed_seconds"], 4),
            "speedup_vs_1_shard": round(
                result["queries_per_sec"] / baselines[backend], 2
            ),
        })

    # ---- overlap arm: per-test latency through the process transport --- #
    overlap_rows = []
    overlap_baseline = None
    for shards in (1, top_shards):
        result = run_configuration(
            dataset, workload, backend_under_test, shards,
            method_factory=latency_method_factory(TEST_LATENCY),
        )
        assert result["answers"] == expected, (
            f"answers changed at overlap shards={shards}"
        )
        if overlap_baseline is None:
            overlap_baseline = result["queries_per_sec"]
        overlap_rows.append({
            "backend": backend_under_test,
            "shards": shards,
            "queries_per_sec": round(result["queries_per_sec"], 2),
            "elapsed_seconds": round(result["elapsed_seconds"], 4),
            "speedup_vs_1_shard": round(
                result["queries_per_sec"] / overlap_baseline, 2
            ),
        })

    table = rows_to_report(
        "S5_process_shards",
        "S5: Process shard workers — CPU-bound scatter (thread vs process)",
        cpu_rows,
        columns=["backend", "shards", "queries_per_sec",
                 "elapsed_seconds", "speedup_vs_1_shard"],
    )
    rows_to_report(
        "S5_process_shards_overlap",
        "S5b: Overlap arm (simulated per-test latency through the workers)",
        overlap_rows,
        columns=["backend", "shards", "queries_per_sec",
                 "elapsed_seconds", "speedup_vs_1_shard"],
    )
    cpu_top = next(r for r in cpu_rows
                   if r["backend"] == "process" and r["shards"] == top_shards)
    overlap_top = overlap_rows[-1]
    write_json_report("process_shards", {
        "experiment": "S5_process_shards",
        "num_queries": len(workload),
        "dataset_size": DATASET_SIZE,
        "test_latency_seconds": TEST_LATENCY,
        "available_cpus": cpus,
        "top_shards": top_shards,
        # the cpu-arm floor is only meaningful with >= 4 usable cores
        "cpu_limited": cpus < 4,
        "cpu_rows": cpu_rows,
        "overlap_rows": overlap_rows,
        "process_speedup_top_shards": cpu_top["speedup_vs_1_shard"],
        "overlap_speedup_top_shards": overlap_top["speedup_vs_1_shard"],
    })
    print(f"\n{table}\navailable_cpus={cpus}")

    # the floors are defined at the full 4-shard fan-out (CI smoke pins
    # top_shards lower to keep the run short — no floor can hold there)
    if top_shards >= 4:
        # the overlap floor holds on any host — sleeping releases both the
        # GIL and the core, so only transport overhead could eat it
        assert overlap_top["speedup_vs_1_shard"] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x through the process transport at "
            f"{top_shards} shards (overlap arm), "
            f"got {overlap_top['speedup_vs_1_shard']}x"
        )
        # the cpu floor needs actual cores to express core-level parallelism
        if cpus >= 4:
            assert cpu_top["speedup_vs_1_shard"] >= SPEEDUP_FLOOR, (
                f"expected >= {SPEEDUP_FLOOR}x at {top_shards} process shards "
                f"on {cpus}-core host, got {cpu_top['speedup_vs_1_shard']}x"
            )

    benchmark.pedantic(
        lambda: run_configuration(dataset, workload, backend_under_test, 2),
        rounds=1, iterations=1,
    )
