"""E11 (extension) — supergraph-query workloads.

The paper's title problem covers both query semantics; the demo's scenarios
only show subgraph queries.  This bench runs a *supergraph* workload
(patterns that contain dataset graphs, e.g. a large target molecule screened
against a fragment library) with and without GC, and regenerates the same
savings table as E7 for the dual semantics — including the role reversal of
the sub/super cases documented in the pruner.
"""

from __future__ import annotations

import pytest

from repro.query_model import QueryType
from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import WorkloadGenerator, WorkloadMix, run_workload

from benchmarks.harness import rows_to_report, standard_dataset


@pytest.fixture(scope="module")
def setting():
    # small dataset graphs + larger query patterns: the supergraph regime
    dataset = standard_dataset(60, seed=800, min_vertices=6, max_vertices=14)
    mix = WorkloadMix(repeat_fraction=0.3, shrink_fraction=0.25, extend_fraction=0.35,
                      fresh_fraction=0.1, pool_size=12, query_type=QueryType.SUPERGRAPH,
                      min_pattern_vertices=10, max_pattern_vertices=16, resize_vertices=2)
    workload = WorkloadGenerator(dataset, rng=801).generate(40, mix=mix, name="supergraph")
    return dataset, workload


def run_mode(dataset, workload, cache_enabled: bool):
    config = GCConfig(cache_capacity=20, window_size=5, replacement_policy="HD",
                      method="direct-si", cache_enabled=cache_enabled)
    system = GraphCacheSystem(dataset, config)
    return run_workload(system, workload)


def test_bench_supergraph_queries(benchmark, setting):
    """Regenerate the with/without-GC comparison for supergraph queries."""
    dataset, workload = setting
    baseline = run_mode(dataset, workload, cache_enabled=False)
    with_gc = run_mode(dataset, workload, cache_enabled=True)

    rows = [
        {
            "configuration": "Method M only",
            "dataset_tests": baseline.aggregate.total_dataset_tests,
            "hit_ratio": 0.0,
            "sub_hits": 0,
            "super_hits": 0,
            "exact_hits": 0,
        },
        {
            "configuration": "GC over Method M",
            "dataset_tests": with_gc.aggregate.total_dataset_tests,
            "hit_ratio": round(with_gc.aggregate.hit_ratio, 3),
            "sub_hits": with_gc.aggregate.num_sub_hits,
            "super_hits": with_gc.aggregate.num_super_hits,
            "exact_hits": with_gc.aggregate.num_exact_hits,
        },
        {
            "configuration": "test speedup",
            "dataset_tests": round(
                baseline.aggregate.total_dataset_tests
                / max(1, with_gc.aggregate.total_dataset_tests), 3),
            "hit_ratio": "",
            "sub_hits": "",
            "super_hits": "",
            "exact_hits": "",
        },
    ]
    table = rows_to_report(
        "E11_supergraph_queries",
        "E11: GC on supergraph-query workloads",
        rows,
        columns=["configuration", "dataset_tests", "hit_ratio", "sub_hits",
                 "super_hits", "exact_hits"],
    )
    print("\n" + table)

    # correctness for the dual semantics
    for base_report, gc_report in zip(baseline.reports, with_gc.reports):
        assert base_report.answer == gc_report.answer
    # the cache produced hits and savings for supergraph queries too
    assert with_gc.aggregate.hit_ratio > 0.2
    assert with_gc.aggregate.total_dataset_tests < baseline.aggregate.total_dataset_tests

    benchmark.pedantic(lambda: run_mode(dataset, workload, cache_enabled=True),
                       rounds=1, iterations=1)
