"""E10 (extension) — GC's own overhead: probe tests vs dataset tests saved.

GC is not free: discovering sub/super/exact hits requires sub-iso "probe"
tests against the (small) cached query graphs, plus maintaining the cached
query index.  The paper argues these costs are negligible compared to the
dataset sub-iso tests they save, because cached queries are tiny compared to
dataset graphs.  This bench quantifies that claim: for a standard workload it
reports the number and total time of probe tests versus the number and time
of dataset tests avoided.
"""

from __future__ import annotations

import pytest

from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import run_workload

from benchmarks.harness import rows_to_report, standard_dataset, standard_workload


@pytest.fixture(scope="module")
def run():
    dataset = standard_dataset(80, seed=700, min_vertices=15, max_vertices=40)
    workload = standard_workload(dataset, 60, "popular", seed=701, name="overhead")
    config = GCConfig(cache_capacity=30, window_size=5, replacement_policy="HD",
                      method="direct-si")
    system = GraphCacheSystem(dataset, config)
    return system, run_workload(system, workload)


def test_bench_probe_overhead(benchmark, run):
    """Regenerate the probe-cost vs savings accounting."""
    system, result = run
    aggregate = result.aggregate

    probe_seconds = sum(report.probe_seconds for report in result.reports)
    verify_seconds = sum(report.verify_seconds for report in result.reports)
    tests_saved = aggregate.total_baseline_tests - aggregate.total_dataset_tests
    # estimate of the time those saved tests would have cost, using the
    # average observed per-test verification time
    avg_test_seconds = (
        verify_seconds / aggregate.total_dataset_tests
        if aggregate.total_dataset_tests else 0.0
    )
    saved_seconds_estimate = tests_saved * avg_test_seconds

    rows = [
        {"metric": "queries", "value": aggregate.num_queries},
        {"metric": "dataset sub-iso tests run", "value": aggregate.total_dataset_tests},
        {"metric": "dataset sub-iso tests saved", "value": tests_saved},
        {"metric": "probe tests against cached queries", "value": aggregate.total_probe_tests},
        {"metric": "probe time (s)", "value": round(probe_seconds, 4)},
        {"metric": "verification time spent (s)", "value": round(verify_seconds, 4)},
        {"metric": "verification time saved, estimated (s)",
         "value": round(saved_seconds_estimate, 4)},
        {"metric": "probe tests per query", "value": round(
            aggregate.total_probe_tests / aggregate.num_queries, 2)},
        {"metric": "saved tests per probe test", "value": round(
            tests_saved / max(1, aggregate.total_probe_tests), 3)},
    ]
    table = rows_to_report(
        "E10_probe_overhead",
        "E10: GC overhead (probe tests) vs dataset sub-iso tests saved",
        rows,
        columns=["metric", "value"],
    )
    print("\n" + table)

    # the cache produced real savings
    assert tests_saved > 0
    # probing stays bounded: fewer probe tests than the cache population
    # per query on average
    assert aggregate.total_probe_tests / aggregate.num_queries <= system.cache.capacity
    # and the time spent probing is smaller than the estimated time saved
    assert probe_seconds < max(saved_seconds_estimate, 1e-9) or tests_saved > (
        aggregate.total_probe_tests
    )

    benchmark.pedantic(lambda: system.aggregate(), rounds=1, iterations=1)
