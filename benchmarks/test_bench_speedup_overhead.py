"""E2 — Speedup versus Overhead (paper §3.1-II).

The paper's comparison: making the FTV filter stronger by increasing the
feature size by one buys ≈10 % average query time at ≈2× index space, whereas
GC delivers its speedups with a memory footprint around 1 % of the FTV index.

This bench regenerates the three-way comparison on the same dataset and
workload:

* Method M with feature size k           (the baseline),
* Method M with feature size k+1         (more filtering power, bigger index),
* GC deployed over Method M (size k)     (the cache).

Reported per configuration: average dataset sub-iso tests per query, average
query time, and the memory of the structure that delivers the improvement
(the extra index space for k+1, the cache for GC).
"""

from __future__ import annotations

import pytest

from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import run_workload

from benchmarks.harness import rows_to_report, standard_dataset, standard_workload

FEATURE_SIZE = 2


@pytest.fixture(scope="module")
def setting():
    dataset = standard_dataset(80, seed=77, min_vertices=12, max_vertices=32)
    workload = standard_workload(dataset, 50, "popular", seed=11, name="overhead")
    return dataset, workload


def run_without_cache(dataset, workload, feature_size):
    config = GCConfig(cache_enabled=False, method="graphgrep-sx",
                      method_options={"feature_size": feature_size})
    system = GraphCacheSystem(dataset, config)
    result = run_workload(system, workload)
    return system, result


def run_with_gc(dataset, workload, feature_size):
    config = GCConfig(cache_capacity=25, window_size=5, replacement_policy="HD",
                      method="graphgrep-sx", method_options={"feature_size": feature_size})
    system = GraphCacheSystem(dataset, config)
    result = run_workload(system, workload)
    return system, result


def test_bench_speedup_versus_overhead(benchmark, setting):
    """Regenerate the E2 comparison and check its qualitative shape."""
    dataset, workload = setting

    base_system, base = run_without_cache(dataset, workload, FEATURE_SIZE)
    bigger_system, bigger = run_without_cache(dataset, workload, FEATURE_SIZE + 1)
    gc_system, with_gc = run_with_gc(dataset, workload, FEATURE_SIZE)

    base_index = base_system.index_memory_bytes()
    bigger_index = bigger_system.index_memory_bytes()
    cache_bytes = gc_system.cache_memory_bytes()

    def avg_tests(result):
        return result.aggregate.total_dataset_tests / result.aggregate.num_queries

    def avg_seconds(result):
        return result.aggregate.total_seconds / result.aggregate.num_queries

    rows = [
        {
            "configuration": f"Method M (feature size {FEATURE_SIZE})",
            "avg_tests": round(avg_tests(base), 2),
            "avg_query_ms": round(1000 * avg_seconds(base), 3),
            "extra_memory_bytes": 0,
            "index_bytes": base_index,
        },
        {
            "configuration": f"Method M (feature size {FEATURE_SIZE + 1})",
            "avg_tests": round(avg_tests(bigger), 2),
            "avg_query_ms": round(1000 * avg_seconds(bigger), 3),
            "extra_memory_bytes": bigger_index - base_index,
            "index_bytes": bigger_index,
        },
        {
            "configuration": f"GC over Method M (feature size {FEATURE_SIZE})",
            "avg_tests": round(avg_tests(with_gc), 2),
            "avg_query_ms": round(1000 * avg_seconds(with_gc), 3),
            "extra_memory_bytes": cache_bytes,
            "index_bytes": base_index,
        },
    ]
    rows.append(
        {
            "configuration": "GC memory as % of FTV index",
            "avg_tests": "",
            "avg_query_ms": "",
            "extra_memory_bytes": f"{100.0 * cache_bytes / base_index:.1f}%",
            "index_bytes": "",
        }
    )

    # The paper's "~1% of the FTV index" is a scale effect: the index grows
    # with the dataset while the cache is bounded by its capacity.  Show the
    # trend by building the same index over progressively larger datasets and
    # relating the *same* cache footprint to each.
    from repro.methods import GraphGrepSXMethod

    for scale in (2, 4, 8):
        bigger_dataset = standard_dataset(80 * scale, seed=77,
                                          min_vertices=12, max_vertices=32)
        method = GraphGrepSXMethod(feature_size=FEATURE_SIZE)
        method.build(bigger_dataset)
        scaled_index = method.index_memory_bytes()
        rows.append(
            {
                "configuration": f"GC memory as % of FTV index ({80 * scale} dataset graphs)",
                "avg_tests": "",
                "avg_query_ms": "",
                "extra_memory_bytes": f"{100.0 * cache_bytes / scaled_index:.1f}%",
                "index_bytes": scaled_index,
            }
        )
    table = rows_to_report(
        "E2_speedup_vs_overhead",
        "E2: filtering power vs space — bigger FTV features vs the GC cache",
        rows,
    )
    print("\n" + table)

    # shape checks (paper: bigger features => fewer tests but ~2x space;
    # GC => fewer tests at a small fraction of the index space)
    assert avg_tests(bigger) <= avg_tests(base)
    assert bigger_index > 1.3 * base_index, "larger features should cost much more index space"
    assert avg_tests(with_gc) < avg_tests(base), "GC must reduce dataset sub-iso tests"
    assert cache_bytes < 0.5 * (bigger_index - base_index), (
        "the cache must be far cheaper than the extra index space of a bigger feature size"
    )
    assert cache_bytes < 0.25 * base_index, "cache overhead must be a small fraction of the index"
    # identical answers across all three configurations
    for first, second in zip(base.reports, with_gc.reports):
        assert first.answer == second.answer
    for first, second in zip(base.reports, bigger.reports):
        assert first.answer == second.answer

    # benchmark one GC query-processing pass over a small instance
    small_dataset = standard_dataset(30, seed=5, min_vertices=10, max_vertices=20)
    small_workload = standard_workload(small_dataset, 15, "popular", seed=6)
    benchmark.pedantic(
        lambda: run_with_gc(small_dataset, small_workload, FEATURE_SIZE),
        rounds=1,
        iterations=1,
    )
