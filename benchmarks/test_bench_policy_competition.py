"""E1 — Competition Among Various Policies (paper §3.1-I, Fig. 2c).

The paper's claim: different replacement policies take the lead depending on
the workload characteristics, but HD is "better or on par with the best
alternative".  This bench runs the same set of workload mixes under every
bundled policy (identical fresh systems, a cache small enough to create real
eviction pressure) and regenerates the comparison table: sub-iso-test speedup
per (workload, policy), plus the per-workload winner and HD's gap to it.
"""

from __future__ import annotations

import pytest

from repro.runtime import GCConfig
from repro.workload import compare_policies, generate_standard_workloads

from benchmarks.harness import rows_to_report, standard_dataset

POLICIES = ["LRU", "POP", "PIN", "PINC", "HD"]
MIXES = ["uniform", "popular", "sub-heavy", "super-heavy", "drift"]
NUM_QUERIES = 60

#: HD must reach at least this fraction of the per-workload best policy's
#: speedup ("better or on par with the best alternative").  PINC and HD
#: utilities depend on wall-clock measurements, so the per-workload bound is
#: deliberately loose; the tighter check is on the average across workloads.
HD_TOLERANCE = 0.70
HD_AVERAGE_TOLERANCE = 0.85


@pytest.fixture(scope="module")
def competition_results():
    dataset = standard_dataset(60, seed=2018, min_vertices=10, max_vertices=30)
    workloads = generate_standard_workloads(dataset, NUM_QUERIES, rng=5, names=MIXES)
    config = GCConfig(cache_capacity=15, window_size=5,
                      method="graphgrep-sx", method_options={"feature_size": 1})
    results = {}
    for mix_name, workload in workloads.items():
        results[mix_name] = compare_policies(dataset, workload, POLICIES, config=config)
    return results


def test_bench_policy_competition(benchmark, competition_results):
    """Regenerate the policy-competition table and check the HD takeaway."""
    rows = []
    hd_vs_best = []
    for mix_name, per_policy in competition_results.items():
        speedups = {policy: result.test_speedup for policy, result in per_policy.items()}
        best_policy = max(speedups, key=speedups.get)
        hd_vs_best.append((mix_name, speedups["HD"], speedups[best_policy], best_policy))
        row = {"workload": mix_name}
        row.update({policy: round(speedups[policy], 3) for policy in POLICIES})
        row["winner"] = best_policy
        rows.append(row)

    table = rows_to_report(
        "E1_policy_competition",
        "E1: sub-iso-test speedup per replacement policy and workload mix",
        rows,
        columns=["workload", *POLICIES, "winner"],
    )
    print("\n" + table)

    # every policy actually produced savings on at least one workload
    for policy in POLICIES:
        assert any(per[policy].test_speedup > 1.0 for per in competition_results.values())

    # the paper's takeaway: HD better than or on par with the best alternative
    for mix_name, hd, best, best_policy in hd_vs_best:
        assert hd >= HD_TOLERANCE * best, (
            f"HD fell behind {best_policy} on {mix_name}: {hd:.3f} vs {best:.3f}"
        )
    hd_average = sum(hd for _, hd, _, _ in hd_vs_best) / len(hd_vs_best)
    best_average = sum(best for _, _, best, _ in hd_vs_best) / len(hd_vs_best)
    assert hd_average >= HD_AVERAGE_TOLERANCE * best_average

    # answers are identical across policies (no-false-results invariant)
    for per_policy in competition_results.values():
        reference = [sorted(report.answer) for report in per_policy["LRU"].reports]
        for policy in POLICIES[1:]:
            assert [sorted(r.answer) for r in per_policy[policy].reports] == reference

    # time one representative configuration for pytest-benchmark accounting
    dataset = standard_dataset(30, seed=99, min_vertices=10, max_vertices=24)
    from benchmarks.harness import standard_workload
    from repro.workload import run_with_policy

    workload = standard_workload(dataset, 20, "popular", seed=3)
    config = GCConfig(cache_capacity=10, window_size=5,
                      method="graphgrep-sx", method_options={"feature_size": 1})
    benchmark.pedantic(
        lambda: run_with_policy(dataset, workload, "HD", config=config),
        rounds=1,
        iterations=1,
    )
